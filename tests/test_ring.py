"""Unit tests for the shared-memory SPSC ring (PR 6).

The sharded engine's process driver rests on this transport; these tests
pin its record framing, wrap-around behavior, backpressure and oversize
signaling in isolation, where a counterexample is a few bytes instead of a
diverged join answer.
"""

from __future__ import annotations

import pytest

from repro.engine.ring import DEFAULT_RING_CAPACITY, SpscRing


def _drain(ring):
    out = []
    while (record := ring.try_pop()) is not None:
        out.append(record)
    return out


def test_fifo_roundtrip_and_empty_pop():
    ring = SpscRing(256)
    try:
        assert ring.try_pop() is None
        records = [b"alpha", b"", b"b" * 40, b"last"]
        for record in records:
            assert ring.try_push(record)
        assert _drain(ring) == records
        assert ring.try_pop() is None
        assert len(ring) == 0
    finally:
        ring.close()
        ring.unlink()


def test_wrap_around_preserves_record_order():
    ring = SpscRing(64)
    try:
        payloads = [bytes([i]) * (5 + (i * 7) % 23) for i in range(200)]
        popped = []
        for payload in payloads:
            while not ring.try_push(payload):
                popped.append(ring.try_pop())
            # interleave pops so the offsets lap the capacity many times
            if len(payload) % 3 == 0:
                record = ring.try_pop()
                if record is not None:
                    popped.append(record)
        popped.extend(_drain(ring))
        assert popped == payloads
    finally:
        ring.close()
        ring.unlink()


def test_full_ring_reports_backpressure_not_loss():
    ring = SpscRing(64)
    try:
        pushed = 0
        while ring.try_push(b"x" * 10):
            pushed += 1
        assert pushed > 0
        assert not ring.try_push(b"x" * 10)  # no space right now
        assert ring.try_pop() == b"x" * 10
        assert ring.try_push(b"x" * 10)  # space reclaimed
        assert len(_drain(ring)) == pushed
    finally:
        ring.close()
        ring.unlink()


def test_oversize_record_raises_for_pipe_fallback():
    ring = SpscRing(64)
    try:
        with pytest.raises(ValueError):
            ring.try_push(b"y" * 64)  # could never fit: caller must use the pipe
    finally:
        ring.close()
        ring.unlink()


def test_attach_sees_existing_records_and_capacity():
    ring = SpscRing(128)
    try:
        ring.try_push(b"handoff")
        other = SpscRing.attach(ring.name)
        assert other.capacity == 128
        assert other.try_pop() == b"handoff"
        other.close()
    finally:
        ring.close()
        ring.unlink()


def test_capacity_validation_and_default():
    with pytest.raises(ValueError):
        SpscRing(32)
    assert DEFAULT_RING_CAPACITY >= 1 << 16
