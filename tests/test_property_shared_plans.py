"""Property-based tests for executable shared plans.

For randomly generated workloads (windows, selectivities) and random
streams, every sharing strategy must return exactly the per-query answers of
the brute-force reference join, and the state-slice plan's answers must be
insensitive to whether selections are pushed into the chain.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.baselines.pullup import build_pullup_plan
from repro.baselines.pushdown import build_pushdown_plan
from repro.baselines.unshared import build_unshared_plan
from repro.core.plan_builder import build_state_slice_plan
from repro.engine.executor import execute_plan
from repro.query.predicates import selectivity_filter, selectivity_join
from repro.query.query import ContinuousQuery, QueryWorkload
from repro.streams.tuples import make_tuple
from tests.conftest import joined_keys, regular_join_reference


@st.composite
def random_streams(draw, max_events: int = 30):
    count = draw(st.integers(min_value=4, max_value=max_events))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.02, max_value=0.5, allow_nan=False),
            min_size=count,
            max_size=count,
        )
    )
    streams = draw(st.lists(st.sampled_from(["A", "B"]), min_size=count, max_size=count))
    keys = draw(
        st.lists(st.integers(min_value=0, max_value=999), min_size=count, max_size=count)
    )
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=0.999, allow_nan=False),
            min_size=count,
            max_size=count,
        )
    )
    now = 0.0
    tuples = []
    for gap, stream, key, value in zip(gaps, streams, keys, values):
        now += gap
        tuples.append(make_tuple(stream, now, join_key=key, value=value))
    return tuples


@st.composite
def random_workloads(draw):
    window_count = draw(st.integers(min_value=1, max_value=4))
    windows = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.2, max_value=4.0, allow_nan=False),
                min_size=window_count,
                max_size=window_count,
                unique=True,
            )
        )
    )
    join_selectivity = draw(st.sampled_from([0.1, 0.3, 1.0]))
    filter_selectivity = draw(st.sampled_from([0.3, 0.6, 1.0]))
    condition = selectivity_join(join_selectivity)
    queries = []
    for index, window in enumerate(windows):
        left_filter = (
            selectivity_filter(filter_selectivity) if index > 0 else selectivity_filter(1.0)
        )
        queries.append(
            ContinuousQuery(
                name=f"Q{index + 1}",
                window=window,
                join_condition=condition,
                left_filter=left_filter,
            )
        )
    return QueryWorkload(queries)


def reference_answers(workload, tuples):
    return {
        query.name: regular_join_reference(
            tuples,
            window=query.window,
            condition=query.join_condition,
            left_filter=query.left_filter,
            right_filter=query.right_filter,
        )
        for query in workload
    }


@settings(max_examples=30, deadline=None)
@given(workload=random_workloads(), tuples=random_streams())
def test_state_slice_plan_matches_reference(workload, tuples):
    plan = build_state_slice_plan(workload)
    report = execute_plan(plan, tuples)
    expected = reference_answers(workload, tuples)
    for name, keys in expected.items():
        assert joined_keys(report.results[name]) == keys


@settings(max_examples=20, deadline=None)
@given(workload=random_workloads(), tuples=random_streams())
def test_pushdown_toggle_does_not_change_answers(workload, tuples):
    with_pushdown = execute_plan(build_state_slice_plan(workload, push_selections=True), tuples)
    without_pushdown = execute_plan(
        build_state_slice_plan(workload, push_selections=False), tuples
    )
    for name in workload.names():
        assert joined_keys(with_pushdown.results[name]) == joined_keys(
            without_pushdown.results[name]
        )


@settings(max_examples=20, deadline=None)
@given(workload=random_workloads(), tuples=random_streams())
def test_all_strategies_agree(workload, tuples):
    builders = [
        build_state_slice_plan,
        build_pullup_plan,
        build_pushdown_plan,
        build_unshared_plan,
    ]
    reports = [execute_plan(builder(workload), tuples) for builder in builders]
    expected = reference_answers(workload, tuples)
    for report in reports:
        for name, keys in expected.items():
            assert joined_keys(report.results[name]) == keys
