"""Unit tests for the stateless operators: selection, projection, split, router,
union, sinks and the windowed aggregate."""

from __future__ import annotations

import pytest

from repro.engine.errors import PlanError
from repro.engine.metrics import CostCategory, MetricsCollector
from repro.operators.aggregate import SlidingWindowAggregate
from repro.operators.projection import Projection
from repro.operators.router import Route, Router
from repro.operators.selection import JoinedFilter, Selection, StreamFilter
from repro.operators.sink import CollectorSink, CountingSink
from repro.operators.split import MultiSplit, Split
from repro.operators.union import BagUnion, OrderedUnion
from repro.query.predicates import TruePredicate, attribute_gt, attribute_lt
from repro.streams.tuples import FEMALE, MALE, JoinedTuple, Punctuation, RefTuple, make_tuple


def joined(ts_left: float, ts_right: float, **values) -> JoinedTuple:
    left = make_tuple("A", ts_left, **(values or {"value": 0.5}))
    right = make_tuple("B", ts_right, **(values or {"value": 0.5}))
    return JoinedTuple(left, right)


class TestSelection:
    def test_filters_by_predicate(self):
        selection = Selection(attribute_gt("value", 0.5), name="s")
        assert selection.process(make_tuple("A", 0.0, value=0.9), "in")
        assert selection.process(make_tuple("A", 0.0, value=0.1), "in") == []

    def test_counts_one_comparison_per_tuple(self):
        metrics = MetricsCollector()
        selection = Selection(attribute_gt("value", 0.5), name="s")
        selection.bind_metrics(metrics)
        for value in (0.1, 0.9, 0.4):
            selection.process(make_tuple("A", 0.0, value=value), "in")
        assert metrics.comparisons[CostCategory.SELECT] == 3

    def test_punctuations_pass_through(self):
        selection = Selection(attribute_gt("value", 0.5), name="s")
        punct = Punctuation(1.0)
        assert selection.process(punct, "in") == [("out", punct)]


class TestStreamFilter:
    def test_filters_only_the_configured_stream(self):
        chain_filter = StreamFilter(attribute_gt("value", 0.5), stream="A", name="f")
        low_a = RefTuple(make_tuple("A", 0.0, value=0.1), MALE)
        high_a = RefTuple(make_tuple("A", 0.0, value=0.9), FEMALE)
        any_b = RefTuple(make_tuple("B", 0.0, value=0.1), MALE)
        assert chain_filter.process(low_a, "in") == []
        assert chain_filter.process(high_a, "in") == [("out", high_a)]
        assert chain_filter.process(any_b, "in") == [("out", any_b)]

    def test_charges_only_male_references(self):
        metrics = MetricsCollector()
        chain_filter = StreamFilter(attribute_gt("value", 0.5), stream="A", name="f")
        chain_filter.bind_metrics(metrics)
        base = make_tuple("A", 0.0, value=0.9)
        chain_filter.process(RefTuple(base, MALE), "in")
        chain_filter.process(RefTuple(base, FEMALE), "in")
        assert metrics.comparisons[CostCategory.SELECT] == 1

    def test_plain_stream_tuples_are_filtered_too(self):
        chain_filter = StreamFilter(attribute_gt("value", 0.5), stream="A", name="f")
        assert chain_filter.process(make_tuple("A", 0.0, value=0.2), "in") == []
        kept = make_tuple("B", 0.0, value=0.2)
        assert chain_filter.process(kept, "in") == [("out", kept)]


class TestJoinedFilter:
    def test_applies_left_and_right_predicates(self):
        residual = JoinedFilter(
            left_predicate=attribute_gt("value", 0.5),
            right_predicate=attribute_lt("value", 0.5),
        )
        good = JoinedTuple(make_tuple("A", 0.0, value=0.9), make_tuple("B", 0.0, value=0.1))
        bad = JoinedTuple(make_tuple("A", 0.0, value=0.9), make_tuple("B", 0.0, value=0.9))
        assert residual.process(good, "in") == [("out", good)]
        assert residual.process(bad, "in") == []

    def test_trivial_predicates_cost_nothing(self):
        metrics = MetricsCollector()
        residual = JoinedFilter()
        residual.bind_metrics(metrics)
        residual.process(joined(0.0, 1.0), "in")
        assert metrics.comparisons.get(CostCategory.SELECT, 0) == 0

    def test_non_joined_items_pass_through(self):
        residual = JoinedFilter(left_predicate=attribute_gt("value", 0.5))
        tup = make_tuple("A", 0.0, value=0.1)
        assert residual.process(tup, "in") == [("out", tup)]


class TestProjection:
    def test_projects_stream_tuples(self):
        projection = Projection(["x"], name="p")
        out = projection.process(make_tuple("A", 1.0, x=1, y=2), "in")
        assert out[0][1].values == {"x": 1}

    def test_projects_joined_tuples_with_prefixed_names(self):
        projection = Projection(["A.x"], name="p")
        item = JoinedTuple(make_tuple("A", 1.0, x=7), make_tuple("B", 2.0, y=9))
        out = projection.process(item, "in")
        assert out[0][1].values == {"A.x": 7}
        assert out[0][1].timestamp == 2.0

    def test_punctuation_passes(self):
        projection = Projection(["x"], name="p")
        punct = Punctuation(0.5)
        assert projection.process(punct, "in") == [("out", punct)]


class TestSplit:
    def test_partitions_by_predicate(self):
        split = Split(attribute_gt("value", 0.5), name="split")
        assert split.process(make_tuple("A", 0.0, value=0.9), "in")[0][0] == "match"
        assert split.process(make_tuple("A", 0.0, value=0.1), "in")[0][0] == "rest"

    def test_broadcasts_punctuations(self):
        split = Split(attribute_gt("value", 0.5), name="split")
        out = split.process(Punctuation(1.0), "in")
        assert {port for port, _ in out} == {"match", "rest"}

    def test_multisplit_routes_first_match(self):
        split = MultiSplit(
            [("low", attribute_lt("value", 0.3)), ("high", attribute_gt("value", 0.7))]
        )
        assert split.process(make_tuple("A", 0.0, value=0.1), "in")[0][0] == "low"
        assert split.process(make_tuple("A", 0.0, value=0.9), "in")[0][0] == "high"
        assert split.process(make_tuple("A", 0.0, value=0.5), "in")[0][0] == "rest"

    def test_multisplit_validation(self):
        with pytest.raises(PlanError):
            MultiSplit([])
        with pytest.raises(PlanError):
            MultiSplit([("p", TruePredicate()), ("p", TruePredicate())])


class TestRouter:
    def test_routes_by_window_constraint(self):
        router = Router(
            [Route("Q1", window=1.0), Route("Q2", window=None)], name="router"
        )
        near = joined(0.0, 0.5)
        far = joined(0.0, 5.0)
        assert {port for port, _ in router.process(near, "in")} == {"Q1", "Q2"}
        assert {port for port, _ in router.process(far, "in")} == {"Q2"}

    def test_residual_filters_apply_per_side(self):
        router = Router(
            [Route("Q", window=None, left_filter=attribute_gt("value", 0.5))],
            name="router",
        )
        passing = JoinedTuple(
            make_tuple("A", 0.0, value=0.9), make_tuple("B", 0.0, value=0.1)
        )
        failing = JoinedTuple(
            make_tuple("A", 0.0, value=0.1), make_tuple("B", 0.0, value=0.9)
        )
        assert router.process(passing, "in")
        assert router.process(failing, "in") == []

    def test_counts_route_and_select_comparisons(self):
        metrics = MetricsCollector()
        router = Router(
            [
                Route("Q1", window=1.0),
                Route("Q2", window=None, left_filter=attribute_gt("value", 0.5)),
            ],
            name="router",
        )
        router.bind_metrics(metrics)
        router.process(joined(0.0, 0.5, value=0.9), "in")
        assert metrics.comparisons[CostCategory.ROUTE] == 1
        assert metrics.comparisons[CostCategory.SELECT] == 1

    def test_rejects_non_joined_items(self):
        router = Router([Route("Q", window=None)], name="router")
        with pytest.raises(PlanError):
            router.process(make_tuple("A", 0.0, value=1.0), "in")

    def test_route_validation(self):
        with pytest.raises(PlanError):
            Router([])
        with pytest.raises(PlanError):
            Router([Route("Q"), Route("Q")])

    def test_broadcasts_punctuations(self):
        router = Router([Route("Q1"), Route("Q2")], name="router")
        out = router.process(Punctuation(1.0), "in")
        assert {port for port, _ in out} == {"Q1", "Q2"}


class TestUnions:
    def test_ordered_union_releases_on_punctuation(self):
        union = OrderedUnion(name="u")
        late = joined(0.0, 3.0)
        early = joined(0.0, 1.0)
        assert union.process(late, "in") == []
        assert union.process(early, "in") == []
        released = union.process(Punctuation(2.0), "in")
        assert [item for _, item in released] == [early]
        assert union.pending() == 1

    def test_ordered_union_flush_releases_rest_sorted(self):
        union = OrderedUnion(name="u")
        items = [joined(0.0, ts) for ts in (3.0, 1.0, 2.0)]
        for item in items:
            union.process(item, "in")
        flushed = [item.timestamp for _, item in union.flush()]
        assert flushed == sorted(flushed)
        assert union.pending() == 0

    def test_ordered_union_output_is_globally_sorted(self):
        union = OrderedUnion(name="u")
        out = []
        for ts in (1.0, 0.5, 2.0, 1.5):
            union.process(joined(0.0, ts), "in")
            out.extend(item for _, item in union.process(Punctuation(ts), "in"))
        out.extend(item for _, item in union.flush())
        stamps = [item.timestamp for item in out]
        assert stamps == sorted(stamps)

    def test_bag_union_forwards_immediately_and_drops_punctuations(self):
        union = BagUnion(name="u")
        item = joined(0.0, 1.0)
        assert union.process(item, "in") == [("out", item)]
        assert union.process(Punctuation(5.0), "in") == []


class TestSinks:
    def test_collector_sink_stores_items_and_calls_back(self):
        seen = []
        sink = CollectorSink(name="sink", callback=seen.append)
        tup = make_tuple("A", 0.0, x=1)
        sink.process(tup, "in")
        sink.process(Punctuation(1.0), "in")
        assert sink.items == [tup]
        assert seen == [tup]

    def test_counting_sink_counts_without_storing(self):
        sink = CountingSink(name="count")
        for i in range(5):
            sink.process(make_tuple("A", float(i), x=i), "in")
        assert sink.count == 5


class TestSlidingWindowAggregate:
    def test_average_over_window(self):
        aggregate = SlidingWindowAggregate(window=2.0, attribute="x", function="avg")
        out = []
        for ts, x in [(0.0, 2.0), (1.0, 4.0), (3.0, 6.0)]:
            out.extend(aggregate.process(make_tuple("A", ts, x=x), "in"))
        # At ts=3.0 the tuple at ts=0.0 has expired (age 3 >= 2), ts=1.0 expired too.
        values = [item.values["aggregate"] for _, item in out]
        assert values[0] == pytest.approx(2.0)
        assert values[1] == pytest.approx(3.0)
        assert values[2] == pytest.approx(6.0)

    def test_named_functions(self):
        for name, expected in [("count", 2.0), ("sum", 6.0), ("min", 2.0), ("max", 4.0)]:
            aggregate = SlidingWindowAggregate(window=10.0, attribute="x", function=name)
            aggregate.process(make_tuple("A", 0.0, x=2.0), "in")
            out = aggregate.process(make_tuple("A", 1.0, x=4.0), "in")
            assert out[0][1].values["aggregate"] == pytest.approx(expected)

    def test_emit_every(self):
        aggregate = SlidingWindowAggregate(
            window=10.0, attribute="x", function="count", emit_every=2
        )
        first = aggregate.process(make_tuple("A", 0.0, x=1.0), "in")
        second = aggregate.process(make_tuple("A", 1.0, x=1.0), "in")
        assert first == []
        assert len(second) == 1

    def test_works_on_joined_tuples(self):
        aggregate = SlidingWindowAggregate(window=10.0, attribute="A.x", function="sum")
        item = JoinedTuple(make_tuple("A", 0.0, x=3.0), make_tuple("B", 1.0, y=1.0))
        out = aggregate.process(item, "in")
        assert out[0][1].values["aggregate"] == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(PlanError):
            SlidingWindowAggregate(window=0, attribute="x")
        with pytest.raises(PlanError):
            SlidingWindowAggregate(window=1, attribute="x", function="median")
        aggregate = SlidingWindowAggregate(window=10.0, attribute="A.x", function="sum")
        bad = JoinedTuple(make_tuple("A", 0.0, y=1.0), make_tuple("B", 0.0, y=1.0))
        with pytest.raises(PlanError):
            aggregate.process(bad, "in")
