"""Tests for chain specifications, the Mem-Opt builder, the merge graph and
the CPU-Opt (shortest-path) builder."""

from __future__ import annotations

import pytest

from repro.core.cpu_opt import (
    brute_force_cpu_opt_chain,
    build_cpu_opt_chain,
    enumerate_chains,
    shortest_path,
)
from repro.core.mem_opt import build_mem_opt_chain
from repro.core.merge_graph import (
    ChainCostParameters,
    MergeGraph,
    chain_cpu_cost,
    chain_memory_cost,
    slice_cpu_cost,
    slice_memory_cost,
)
from repro.core.slices import ChainSpec, SliceSpec
from repro.engine.errors import ChainError
from repro.query.predicates import selectivity_join
from repro.query.query import workload_from_windows
from repro.query.workload import build_workload, multi_query_workload


def plain_workload(windows):
    return workload_from_windows(list(windows), selectivity_join(0.1))


class TestSliceSpec:
    def test_validation(self):
        with pytest.raises(ChainError):
            SliceSpec(-1.0, 2.0, (2.0,))
        with pytest.raises(ChainError):
            SliceSpec(2.0, 2.0, (2.0,))
        with pytest.raises(ChainError):
            SliceSpec(0.0, 2.0, (5.0,))

    def test_router_needed_when_window_ends_inside(self):
        merged = SliceSpec(0.0, 3.0, (1.0, 3.0))
        exact = SliceSpec(0.0, 3.0, (3.0,))
        assert merged.needs_router
        assert merged.inner_windows() == (1.0,)
        assert not exact.needs_router
        assert exact.inner_windows() == ()

    def test_length_and_describe(self):
        slice_spec = SliceSpec(1.0, 4.0, (2.0, 4.0))
        assert slice_spec.length == 3.0
        assert "1" in slice_spec.describe() and "4" in slice_spec.describe()


class TestChainSpec:
    def test_mem_opt_chain_shape(self):
        workload = plain_workload([3.0, 1.0, 2.0])
        chain = build_mem_opt_chain(workload)
        assert chain.boundaries() == [0.0, 1.0, 2.0, 3.0]
        assert chain.is_memory_optimal
        assert len(chain) == 3

    def test_duplicate_windows_collapse_to_one_slice(self):
        workload = plain_workload([2.0, 2.0, 5.0])
        chain = build_mem_opt_chain(workload)
        assert chain.boundaries() == [0.0, 2.0, 5.0]

    def test_chain_must_start_at_zero(self):
        workload = plain_workload([1.0, 2.0])
        with pytest.raises(ChainError):
            ChainSpec(workload, [SliceSpec(1.0, 2.0, (2.0,))])

    def test_chain_must_be_contiguous(self):
        workload = plain_workload([1.0, 3.0])
        with pytest.raises(ChainError):
            ChainSpec(
                workload,
                [SliceSpec(0.0, 1.0, (1.0,)), SliceSpec(2.0, 3.0, (3.0,))],
            )

    def test_chain_must_cover_all_windows(self):
        workload = plain_workload([1.0, 2.0, 3.0])
        with pytest.raises(ChainError):
            ChainSpec(
                workload,
                [SliceSpec(0.0, 1.0, (1.0,)), SliceSpec(1.0, 3.0, (3.0,))],
            )

    def test_chain_must_end_at_largest_window(self):
        workload = plain_workload([1.0, 2.0])
        with pytest.raises(ChainError):
            ChainSpec(workload, [SliceSpec(0.0, 1.0, (1.0,))])

    def test_query_slice_mapping(self):
        workload = plain_workload([1.0, 2.0, 4.0])
        chain = build_mem_opt_chain(workload)
        assert chain.slice_for_window(2.0) == 1
        q3 = workload.query("Q3")
        assert chain.slices_for_query(q3) == [0, 1, 2]
        assert [q.name for q in chain.queries_completing_in(0)] == ["Q1"]
        assert [q.name for q in chain.queries_tapping(2)] == ["Q3"]
        with pytest.raises(ChainError):
            chain.slice_for_window(9.0)

    def test_describe_lists_slices(self):
        chain = build_mem_opt_chain(plain_workload([1.0, 2.0]))
        assert "J1" in chain.describe()


class TestSliceCosts:
    def test_memory_cost_reflects_pushed_selection(self):
        workload = build_workload(
            [1.0, 3.0], join_selectivity=0.1, filter_selectivities=[1.0, 0.5]
        )
        params = ChainCostParameters(arrival_rate_left=10, arrival_rate_right=10)
        first = slice_memory_cost(workload, SliceSpec(0.0, 1.0, (1.0,)), params)
        second = slice_memory_cost(workload, SliceSpec(1.0, 3.0, (3.0,)), params)
        # First slice: both streams unfiltered (10+10 tuples per second * 1 s).
        assert first == pytest.approx(20.0)
        # Second slice: left stream filtered to 50%, window range 2 s.
        assert second == pytest.approx((10 * 0.5 + 10) * 2.0)

    def test_cpu_cost_components(self):
        workload = plain_workload([1.0, 2.0])
        params = ChainCostParameters(arrival_rate_left=10, arrival_rate_right=10,
                                     system_overhead=0.0)
        merged = slice_cpu_cost(workload, SliceSpec(0.0, 2.0, (1.0, 2.0)), params)
        exact = slice_cpu_cost(workload, SliceSpec(0.0, 1.0, (1.0,)), params)
        assert merged.route > 0  # the merged slice must re-route by window
        assert exact.route == 0
        assert merged.probe > exact.probe
        assert merged.total > 0

    def test_chain_totals_are_sums(self):
        workload = plain_workload([1.0, 2.0])
        params = ChainCostParameters(arrival_rate_left=10, arrival_rate_right=10)
        chain = build_mem_opt_chain(workload)
        total_cpu = chain_cpu_cost(chain, params)
        total_memory = chain_memory_cost(chain, params)
        assert total_cpu == pytest.approx(
            sum(slice_cpu_cost(workload, s, params).total for s in chain.slices)
        )
        assert total_memory == pytest.approx(
            sum(slice_memory_cost(workload, s, params) for s in chain.slices)
        )

    def test_parameter_validation(self):
        with pytest.raises(ChainError):
            ChainCostParameters(arrival_rate_left=0)
        with pytest.raises(ChainError):
            ChainCostParameters(system_overhead=-1)


class TestMergeGraph:
    def test_edges_enumerate_merged_slices(self):
        workload = plain_workload([1.0, 2.0, 3.0])
        graph = MergeGraph(workload, ChainCostParameters())
        assert graph.node_count == 4
        edge = graph.edge_slice(0, 2)
        assert (edge.start, edge.end) == (0.0, 2.0)
        assert edge.covered_windows == (1.0, 2.0)
        with pytest.raises(ChainError):
            graph.edge_slice(2, 2)

    def test_chain_from_path_roundtrip(self):
        workload = plain_workload([1.0, 2.0, 3.0])
        graph = MergeGraph(workload, ChainCostParameters())
        chain = graph.chain_from_path([0, 2, 3])
        assert [s.end for s in chain.slices] == [2.0, 3.0]
        with pytest.raises(ChainError):
            graph.chain_from_path([0, 2])

    def test_path_cost_equals_sum_of_edges(self):
        workload = plain_workload([1.0, 2.0, 3.0])
        graph = MergeGraph(workload, ChainCostParameters())
        assert graph.path_cost([0, 1, 3]) == pytest.approx(
            graph.edge_cost(0, 1) + graph.edge_cost(1, 3)
        )


class TestCpuOptChain:
    def test_dijkstra_matches_brute_force_on_small_workloads(self):
        params = ChainCostParameters(
            arrival_rate_left=40, arrival_rate_right=40, system_overhead=1.0
        )
        for windows in ([1.0, 2.0, 3.0], [0.5, 0.6, 0.7, 5.0], [1.0, 1.5, 2.0, 2.5, 3.0]):
            workload = plain_workload(windows)
            fast = build_cpu_opt_chain(workload, params)
            exhaustive = brute_force_cpu_opt_chain(workload, params)
            graph = MergeGraph(workload, params)
            fast_cost = sum(
                graph.edge_cost(
                    graph.boundaries.index(s.start), graph.boundaries.index(s.end)
                )
                for s in fast.slices
            )
            brute_cost = sum(
                graph.edge_cost(
                    graph.boundaries.index(s.start), graph.boundaries.index(s.end)
                )
                for s in exhaustive.slices
            )
            assert fast_cost == pytest.approx(brute_cost)

    def test_skewed_windows_get_merged(self):
        """Clustered windows with high system overhead should be merged."""
        workload = multi_query_workload("small-large", query_count=12)
        params = ChainCostParameters(
            arrival_rate_left=60, arrival_rate_right=60, system_overhead=4.0
        )
        cpu_opt = build_cpu_opt_chain(workload, params)
        mem_opt = build_mem_opt_chain(workload)
        assert len(cpu_opt) < len(mem_opt)

    def test_cpu_opt_never_costs_more_than_mem_opt(self):
        params = ChainCostParameters(
            arrival_rate_left=50, arrival_rate_right=50, system_overhead=0.5
        )
        for distribution in ("uniform", "mostly-small", "small-large"):
            workload = multi_query_workload(distribution, query_count=12)
            cpu_opt = build_cpu_opt_chain(workload, params)
            mem_opt = build_mem_opt_chain(workload)
            assert chain_cpu_cost(cpu_opt, params) <= chain_cpu_cost(mem_opt, params) + 1e-9

    def test_mem_opt_never_uses_more_memory_than_cpu_opt(self):
        params = ChainCostParameters(
            arrival_rate_left=50, arrival_rate_right=50, system_overhead=1.0
        )
        workload = build_workload(
            [1.0, 2.0, 4.0], join_selectivity=0.1, filter_selectivities=[1.0, 0.4, 0.4]
        )
        cpu_opt = build_cpu_opt_chain(workload, params)
        mem_opt = build_mem_opt_chain(workload)
        assert chain_memory_cost(mem_opt, params) <= chain_memory_cost(cpu_opt, params) + 1e-9

    def test_enumerate_chains_counts_all_partitions(self):
        workload = plain_workload([1.0, 2.0, 3.0, 4.0])
        chains = enumerate_chains(workload, ChainCostParameters())
        assert len(chains) == 2 ** 3

    def test_shortest_path_returns_full_path(self):
        workload = plain_workload([1.0, 2.0])
        graph = MergeGraph(workload, ChainCostParameters())
        path = shortest_path(graph)
        assert path[0] == 0 and path[-1] == graph.node_count - 1

    def test_single_query_chain_is_one_slice(self):
        workload = plain_workload([2.0])
        assert len(build_cpu_opt_chain(workload)) == 1
        assert len(build_mem_opt_chain(workload)) == 1
