"""Property-based tests (hypothesis) for the core equivalence theorems.

These are the paper's Theorems 1-3 checked over randomly generated streams
and randomly chosen slicings:

* the union of a chain's slice outputs equals the regular sliding-window
  join, for any slicing of the window;
* the slice states are pairwise disjoint at all times, and their total size
  equals the single join's state (Theorem 3);
* online migration (split/merge at random points) never changes the answer.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.chain import SlicedJoinChain
from repro.operators.join import SlidingWindowJoin
from repro.query.predicates import CrossProductCondition, ModularMatchCondition
from repro.streams.tuples import make_tuple
from tests.conftest import joined_keys, regular_join_reference


# ---------------------------------------------------------------------------
# Stream and slicing generators
# ---------------------------------------------------------------------------
@st.composite
def stream_events(draw, max_events: int = 40):
    """A timestamp-ordered sequence of A/B arrivals with small payloads."""
    count = draw(st.integers(min_value=2, max_value=max_events))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=0.8, allow_nan=False),
            min_size=count,
            max_size=count,
        )
    )
    streams = draw(
        st.lists(st.sampled_from(["A", "B"]), min_size=count, max_size=count)
    )
    keys = draw(
        st.lists(st.integers(min_value=0, max_value=6), min_size=count, max_size=count)
    )
    tuples = []
    now = 0.0
    for gap, stream, key in zip(gaps, streams, keys):
        now += gap
        tuples.append(make_tuple(stream, now, join_key=key, value=key / 7.0))
    return tuples


@st.composite
def slicings(draw, max_window: float = 3.0):
    """A chain boundary list [0, ..., W] with 1-4 slices."""
    cuts = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=max_window - 0.05, allow_nan=False),
            min_size=0,
            max_size=3,
            unique=True,
        )
    )
    return [0.0] + sorted(cuts) + [max_window]


def condition_for(flag: bool):
    if flag:
        return CrossProductCondition()
    return ModularMatchCondition(threshold=3, domain=7, attribute="join_key")


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(tuples=stream_events(), boundaries=slicings(), cross=st.booleans())
def test_chain_union_equals_regular_join(tuples, boundaries, cross):
    condition = condition_for(cross)
    chain = SlicedJoinChain(boundaries, condition)
    results = [joined for _, joined in chain.process_all(tuples)]
    reference = regular_join_reference(
        tuples, window=boundaries[-1], condition=condition
    )
    assert joined_keys(results) == reference


@settings(max_examples=40, deadline=None)
@given(tuples=stream_events(), boundaries=slicings())
def test_states_disjoint_and_memory_equals_single_join(tuples, boundaries):
    condition = CrossProductCondition()
    chain = SlicedJoinChain(boundaries, condition)
    single = SlidingWindowJoin(boundaries[-1], boundaries[-1], condition)
    for tup in tuples:
        chain.process(tup)
        port = "left" if tup.stream == "A" else "right"
        single.process(tup, port)
        assert chain.states_are_disjoint()
        assert chain.state_size() == single.state_size()


@settings(max_examples=40, deadline=None)
@given(
    tuples=stream_events(),
    split_at=st.floats(min_value=0.1, max_value=2.9, allow_nan=False),
    split_index=st.integers(min_value=0, max_value=100),
)
def test_migration_split_preserves_answers(tuples, split_at, split_index):
    condition = CrossProductCondition()
    window = 3.0
    chain = SlicedJoinChain([0.0, window], condition)
    when = split_index % max(1, len(tuples))
    results = []
    for index, tup in enumerate(tuples):
        if index == when:
            chain.split_slice(0, split_at)
        results.extend(joined for _, joined in chain.process(tup))
    reference = regular_join_reference(tuples, window=window, condition=condition)
    assert joined_keys(results) == reference


@settings(max_examples=40, deadline=None)
@given(
    tuples=stream_events(),
    cut=st.floats(min_value=0.2, max_value=2.8, allow_nan=False),
    merge_index=st.integers(min_value=0, max_value=100),
)
def test_migration_merge_preserves_answers(tuples, cut, merge_index):
    condition = CrossProductCondition()
    window = 3.0
    chain = SlicedJoinChain([0.0, cut, window], condition)
    when = merge_index % max(1, len(tuples))
    results = []
    for index, tup in enumerate(tuples):
        if index == when:
            chain.merge_slices(0)
        results.extend(joined for _, joined in chain.process(tup))
    reference = regular_join_reference(tuples, window=window, condition=condition)
    assert joined_keys(results) == reference


@settings(max_examples=30, deadline=None)
@given(tuples=stream_events(), boundaries=slicings())
def test_chain_results_never_duplicate(tuples, boundaries):
    chain = SlicedJoinChain(boundaries, CrossProductCondition())
    keys = joined_keys(joined for _, joined in chain.process_all(tuples))
    assert len(keys) == len(set(keys))
