"""Property-based tests for the analytical cost model and the chain
optimizers (Equations 1-4, Sections 5.1-5.2)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.cost_model import (
    TwoQuerySettings,
    selection_pullup_cost,
    selection_pushdown_cost,
    state_slice_cost,
    state_slice_savings,
)
from repro.core.cpu_opt import brute_force_cpu_opt_chain, build_cpu_opt_chain
from repro.core.mem_opt import build_mem_opt_chain
from repro.core.merge_graph import ChainCostParameters, chain_cpu_cost, chain_memory_cost
from repro.core.plan_builder import build_state_slice_plan
from repro.query.predicates import selectivity_join
from repro.query.query import workload_from_windows
from repro.query.workload import build_workload

settings_strategy = st.builds(
    TwoQuerySettings,
    arrival_rate=st.floats(min_value=1.0, max_value=500.0),
    window_small=st.floats(min_value=0.1, max_value=49.9),
    window_large=st.floats(min_value=50.0, max_value=5000.0),
    tuple_size=st.floats(min_value=0.1, max_value=10.0),
    filter_selectivity=st.floats(min_value=0.01, max_value=1.0),
    join_selectivity=st.floats(min_value=0.001, max_value=1.0),
)

window_sets = st.lists(
    st.floats(min_value=0.2, max_value=30.0, allow_nan=False),
    min_size=1,
    max_size=6,
    unique=True,
)

cost_params = st.builds(
    ChainCostParameters,
    arrival_rate_left=st.floats(min_value=1.0, max_value=200.0),
    arrival_rate_right=st.floats(min_value=1.0, max_value=200.0),
    system_overhead=st.floats(min_value=0.0, max_value=5.0),
)


class TestCostModelProperties:
    @settings(max_examples=200, deadline=None)
    @given(s=settings_strategy)
    def test_equation_4_savings_are_never_negative(self, s):
        savings = state_slice_savings(s)
        assert savings.memory_vs_pullup >= -1e-9
        assert savings.memory_vs_pushdown >= -1e-9
        assert savings.cpu_vs_pullup >= -1e-9
        assert savings.cpu_vs_pushdown >= -1e-9

    @settings(max_examples=200, deadline=None)
    @given(s=settings_strategy)
    def test_state_slice_memory_never_exceeds_either_baseline(self, s):
        sliced = state_slice_cost(s)
        assert sliced.memory <= selection_pullup_cost(s).memory + 1e-6
        assert sliced.memory <= selection_pushdown_cost(s).memory + 1e-6

    @settings(max_examples=200, deadline=None)
    @given(s=settings_strategy)
    def test_state_slice_cpu_dominates_up_to_lambda_order_terms(self, s):
        """CPU dominance holds modulo the O(λ) bookkeeping terms.

        The paper's Equation 4 drops the λ-order purge/split/union terms
        ("its effect is small"); the quadratic λ²-order probing and routing
        terms — the ones that matter — must favour the state-slice chain.
        """
        slack = 7 * s.arrival_rate
        sliced = state_slice_cost(s)
        assert sliced.cpu <= selection_pullup_cost(s).cpu + slack
        assert sliced.cpu <= selection_pushdown_cost(s).cpu + slack

    @settings(max_examples=100, deadline=None)
    @given(s=settings_strategy)
    def test_memory_savings_match_direct_ratio_exactly(self, s):
        savings = state_slice_savings(s)
        pullup = selection_pullup_cost(s)
        sliced = state_slice_cost(s)
        direct = (pullup.memory - sliced.memory) / pullup.memory
        assert abs(savings.memory_vs_pullup - direct) < 1e-9


class TestOptimizerProperties:
    @settings(max_examples=25, deadline=None)
    @given(windows=window_sets, params=cost_params)
    def test_dijkstra_cost_equals_brute_force_cost(self, windows, params):
        workload = workload_from_windows(sorted(windows), selectivity_join(0.1))
        fast = build_cpu_opt_chain(workload, params)
        exhaustive = brute_force_cpu_opt_chain(workload, params)
        assert chain_cpu_cost(fast, params) <= chain_cpu_cost(exhaustive, params) + 1e-9
        assert chain_cpu_cost(exhaustive, params) <= chain_cpu_cost(fast, params) + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(windows=window_sets, params=cost_params)
    def test_mem_opt_chain_minimises_analytical_memory(self, windows, params):
        filter_selectivities = [1.0] + [0.5] * (len(windows) - 1)
        workload = build_workload(
            sorted(windows),
            join_selectivity=0.1,
            filter_selectivities=filter_selectivities,
        )
        mem_opt = build_mem_opt_chain(workload)
        cpu_opt = build_cpu_opt_chain(workload, params)
        assert chain_memory_cost(mem_opt, params) <= chain_memory_cost(cpu_opt, params) + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(windows=window_sets, params=cost_params)
    def test_cpu_opt_chain_never_worse_than_mem_opt(self, windows, params):
        workload = workload_from_windows(sorted(windows), selectivity_join(0.05))
        mem_opt = build_mem_opt_chain(workload)
        cpu_opt = build_cpu_opt_chain(workload, params)
        assert chain_cpu_cost(cpu_opt, params) <= chain_cpu_cost(mem_opt, params) + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(windows=window_sets)
    def test_every_chain_yields_a_buildable_plan(self, windows):
        workload = workload_from_windows(sorted(windows), selectivity_join(0.1))
        chain = build_mem_opt_chain(workload)
        plan = build_state_slice_plan(workload, chain=chain)
        plan.validate()
        assert set(plan.output_names()) == set(workload.names())
