"""Property tests: the columnar hot path is invisible in the output (PR 6).

The columnar batch representation (struct-of-arrays blocks, see
``repro.engine.columns``) is a pure performance substitution: every operator
that grew a vectorized ``process_batch`` path — the sliced/count join
chains, the selection filters, the engine's probe loop — must emit exactly
the tuples (and the same delivery order) as the tuple-at-a-time scalar path,
at every batch size, for every condition shape, and for payload values the
float64 key columns cannot represent exactly (strings, bools, huge ints —
the fallback paths).

These are the differential properties that make "byte-identical outputs"
a checked invariant instead of a code-review claim.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.chain import SlicedJoinChain
from repro.core.count_chain import CountSlicedJoinChain
from repro.operators.selection import Selection, StreamFilter
from repro.query.predicates import (
    CrossProductCondition,
    EquiJoinCondition,
    ModularMatchCondition,
    ThetaJoinCondition,
    selectivity_filter,
)
from repro.runtime import StreamEngine
from repro.streams.tuples import MALE, FEMALE, RefTuple, make_tuple

# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------
#: Join-key values deliberately hostile to a float64 key column: exact
#: doubles, strings, bools, and ints beyond 2**53 (not float-representable).
WEIRD_KEYS = [
    0,
    1,
    2,
    3.5,
    -1,
    True,
    False,
    "red",
    "blue",
    2**53 + 1,
    2**53 + 2,
    -(2**40) - 7,
]


@st.composite
def stream_events(draw, max_events: int = 48, keys=None):
    """A timestamp-ordered sequence of A/B arrivals."""
    count = draw(st.integers(min_value=2, max_value=max_events))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=0.6, allow_nan=False),
            min_size=count,
            max_size=count,
        )
    )
    streams = draw(
        st.lists(st.sampled_from(["A", "B"]), min_size=count, max_size=count)
    )
    key_values = draw(
        st.lists(
            st.sampled_from(keys if keys is not None else list(range(7))),
            min_size=count,
            max_size=count,
        )
    )
    tuples = []
    now = 0.0
    for gap, stream, key in zip(gaps, streams, key_values):
        now += gap
        tuples.append(make_tuple(stream, now, join_key=key, value=now))
    return tuples


@st.composite
def slicings(draw, max_window: float = 3.0):
    cuts = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=max_window - 0.05, allow_nan=False),
            min_size=0,
            max_size=3,
            unique=True,
        )
    )
    return [0.0] + sorted(cuts) + [max_window]


CONDITIONS = {
    "equi": lambda: EquiJoinCondition("join_key", "join_key", key_domain=7),
    "modular": lambda: ModularMatchCondition(threshold=3, domain=7, attribute="join_key"),
    "cross": lambda: CrossProductCondition(),
    "theta": lambda: ThetaJoinCondition(
        lambda a, b: a.get("join_key", 0) <= b.get("join_key", 0)
    ),
}


def _emitted(results):
    """Flatten chain (slice, joined) emissions to comparable evidence."""
    return [(joined.left.seqno, joined.right.seqno) for _, joined in results]


# ---------------------------------------------------------------------------
# Chains: sliced (time) and count-sliced joins
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    tuples=stream_events(),
    boundaries=slicings(),
    kind=st.sampled_from(sorted(CONDITIONS)),
)
def test_sliced_chain_columnar_equals_tuple_path(tuples, boundaries, kind):
    runs = {}
    for columnar in (False, True):
        chain = SlicedJoinChain(boundaries, CONDITIONS[kind](), columnar=columnar)
        results = _emitted(chain.process_all(tuples))
        runs[columnar] = (results, chain.state_size())
    assert runs[True] == runs[False]


@settings(max_examples=40, deadline=None)
@given(
    tuples=stream_events(),
    ranks=st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=3, unique=True),
    kind=st.sampled_from(sorted(CONDITIONS)),
)
def test_count_chain_columnar_equals_tuple_path(tuples, ranks, kind):
    boundaries = [0] + sorted(ranks)
    runs = {}
    for columnar in (False, True):
        chain = CountSlicedJoinChain(boundaries, CONDITIONS[kind](), columnar=columnar)
        results = _emitted(chain.process_all(tuples))
        runs[columnar] = (results, chain.state_size())
    assert runs[True] == runs[False]


# ---------------------------------------------------------------------------
# Engine: full sessions, weird keys, every batch size
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    tuples=stream_events(keys=WEIRD_KEYS),
    batch_size=st.sampled_from([1, 3, 16, 64]),
    window_kind=st.sampled_from(["time", "count"]),
    probe=st.sampled_from(["nested_loop", "hash"]),
)
def test_engine_columnar_equals_tuple_path_on_weird_keys(
    tuples, batch_size, window_kind, probe
):
    """Engine sessions agree even when keys defeat the float64 columns.

    Strings, bools, ints past 2**53, and missing attributes all force the
    columnar layout's fallback behavior; the scalar path is the oracle.
    """
    condition = EquiJoinCondition("join_key", "join_key", key_domain=13)
    windows = {"Q1": 2.0, "Q2": 3.0} if window_kind == "time" else {"Q1": 3, "Q2": 5}
    runs = {}
    for columnar in (False, True):
        engine = StreamEngine(
            condition,
            batch_size=batch_size,
            probe=probe,
            columnar=columnar,
            window_kind=window_kind,
        )
        for name, window in windows.items():
            engine.add_query(name, window)
        engine.process_many(tuples)
        engine.flush()
        runs[columnar] = {
            name: [(j.left.seqno, j.right.seqno) for j in engine.results(name)]
            for name in windows
        }
    assert runs[True] == runs[False]


# ---------------------------------------------------------------------------
# Selection operators: vectorized filter ≡ per-item predicate
# ---------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(tuples=stream_events(max_events=64), threshold=st.floats(0.0, 1.0))
def test_selection_batch_equals_per_item(tuples, threshold):
    predicate = selectivity_filter(1.0 - threshold)
    batch_op = Selection(predicate)
    item_op = Selection(predicate)
    batched = batch_op.process_batch(list(tuples), "in")
    singly = [em for tup in tuples for em in item_op.process(tup, "in")]
    assert [(port, item.seqno) for port, item in batched] == [
        (port, item.seqno) for port, item in singly
    ]


@settings(max_examples=30, deadline=None)
@given(
    tuples=stream_events(max_events=64),
    threshold=st.floats(0.0, 1.0),
    genders=st.lists(st.sampled_from([MALE, FEMALE]), min_size=64, max_size=64),
)
def test_stream_filter_batch_equals_per_item(tuples, threshold, genders):
    refs = [
        RefTuple(tup, gender) for tup, gender in zip(tuples, genders)
    ]
    predicate = selectivity_filter(1.0 - threshold)
    batch_op = StreamFilter(predicate, "A")
    item_op = StreamFilter(predicate, "A")
    batched = batch_op.process_batch(list(refs), "in")
    singly = [em for ref in refs for em in item_op.process(ref, "in")]
    assert [(port, item.seqno, item.gender) for port, item in batched] == [
        (port, item.seqno, item.gender) for port, item in singly
    ]
