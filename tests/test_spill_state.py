"""Unit tests for the tiered window-state primitives (PR 8).

The differential fuzz and benchmark suites exercise spilling end-to-end;
this file pins the primitives in isolation: budget parsing, the
deque-compatible :class:`SpilledState` surface, the per-segment key
index, store cleanup, and the engine-level eviction/accounting contract.
"""

from __future__ import annotations

import os

import pytest

from repro.engine.spill import (
    SpilledState,
    SpillStore,
    parse_memory_budget,
)
from repro.query.predicates import EquiJoinCondition
from repro.runtime import StreamEngine
from repro.runtime.engine import QueryError
from repro.streams.tuples import StreamTuple


def make_tuples(count, stream="A", key_domain=4, spacing=0.01):
    return [
        StreamTuple(stream, i * spacing, {"join_key": i % key_domain, "seq": i})
        for i in range(count)
    ]


# -- parse_memory_budget -------------------------------------------------------


def test_parse_memory_budget_accepts_suffixes_and_plain_bytes():
    assert parse_memory_budget(None) is None
    assert parse_memory_budget(4096) == 4096
    assert parse_memory_budget("4096") == 4096
    assert parse_memory_budget("64K") == 64 * 1024
    assert parse_memory_budget("64KB") == 64 * 1024
    assert parse_memory_budget(" 2m ") == 2 * 1024**2
    assert parse_memory_budget("1G") == 1024**3


@pytest.mark.parametrize("bad", ["", "nonsense", "12Q", "-4K", 0, -1])
def test_parse_memory_budget_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_memory_budget(bad)


# -- SpilledState deque compatibility ------------------------------------------


def test_spilled_state_preserves_order_across_tiers():
    store = SpillStore()
    data = make_tuples(300)
    state = SpilledState(store, "join_key", data[:200], flush_rows=64)
    for tup in data[200:]:
        state.append(tup)
    assert len(state) == 300
    assert list(state) == data
    assert state[0] is data[0] or state[0].seqno == data[0].seqno
    assert state[-1].seqno == data[-1].seqno
    assert state.popleft().seqno == data[0].seqno
    assert len(state) == 299
    store.close()


def test_spilled_state_getitem_bounds():
    store = SpillStore()
    state = SpilledState(store, None, make_tuples(10), flush_rows=4)
    with pytest.raises(IndexError):
        state[10]
    with pytest.raises(IndexError):
        state[-11]
    assert state[-1].seqno == state[9].seqno
    store.close()


def test_spilled_state_purge_matches_in_core_scan():
    store = SpillStore()
    data = make_tuples(100, spacing=0.1)  # timestamps 0.0 .. 9.9
    state = SpilledState(store, "join_key", data, flush_rows=16)
    purged, comparisons = state.purge(now=10.0, end=5.0)
    # now - t >= 5.0  <=>  t <= 5.0  <=>  the first 51 tuples.
    assert [t.seqno for t in purged] == [t.seqno for t in data[:51]]
    assert comparisons == 52  # one per purged head + the failing check
    assert len(state) == 49
    # A second purge with the same clock is a no-op costing one check.
    purged, comparisons = state.purge(now=10.0, end=5.0)
    assert purged == [] and comparisons == 1
    store.close()


def test_spilled_state_probe_uses_key_index():
    store = SpillStore()
    data = make_tuples(256, key_domain=8)
    state = SpilledState(store, "join_key", data, flush_rows=64)
    before = store.cold_reads
    hits = state.probe(3)
    assert [t.seqno for t in hits] == [t.seqno for t in data if t.values["join_key"] == 3]
    # The index decoded only the matching bucket, not the full state.
    assert store.cold_reads - before == len(hits)
    # Unindexed probe (no key) falls back to a full scan.
    assert len(state.probe()) == 256
    # An unhashable key degrades gracefully to the scan path.
    assert len(state.probe([])) >= 0
    store.close()


def test_spill_store_close_removes_segment_directory():
    store = SpillStore()
    assert store.directory is None  # lazy: no tempdir until a segment exists
    state = SpilledState(store, None, make_tuples(48), flush_rows=16)
    for tup in make_tuples(48):
        state.append(tup)  # three more flushes of 16 rows each
    directory = store.directory
    assert directory is not None and os.path.isdir(directory)
    assert store.segments_written >= 4
    assert state.spilled_bytes() > 0
    store.close()
    assert not os.path.exists(directory)
    store.close()  # idempotent


# -- engine-level budget contract ----------------------------------------------


def test_engine_rejects_non_positive_budget():
    condition = EquiJoinCondition("join_key", "join_key", key_domain=4)
    with pytest.raises(QueryError):
        StreamEngine(condition, memory_budget_bytes=0)
    with pytest.raises(QueryError):
        StreamEngine(condition, memory_budget_bytes=-1)


def test_budgeted_engine_matches_unbudgeted_and_accounts_tiers():
    condition = EquiJoinCondition("join_key", "join_key", key_domain=6)
    tuples = sorted(
        make_tuples(240, stream="A", key_domain=6, spacing=0.02)
        + make_tuples(240, stream="B", key_domain=6, spacing=0.02),
        key=lambda t: (t.timestamp, t.seqno),
    )

    def run(budget):
        engine = StreamEngine(
            condition, batch_size=16, memory_budget_bytes=budget
        )
        engine.add_query("Q", 2.0)
        engine.add_query("R", 0.7)
        engine.process_many(tuples)
        engine.flush()
        pairs = sorted((j.left.seqno, j.right.seqno) for j in engine.results("Q"))
        snapshot = engine.metrics.snapshot()
        engine.close()
        return pairs, snapshot

    baseline, base_snap = run(None)
    budgeted, snap = run(2048)
    assert budgeted == baseline
    assert base_snap["memory.spilled_bytes"] == 0.0
    assert base_snap["memory.resident_bytes"] > 0.0
    assert snap["observations.spill.evictions"] > 0
    assert snap["observations.spill.segments"] > 0
    assert snap["memory.max_resident_bytes"] < base_snap["memory.max_resident_bytes"]


def test_engine_close_releases_spill_store():
    condition = EquiJoinCondition("join_key", "join_key", key_domain=4)
    engine = StreamEngine(condition, batch_size=16, memory_budget_bytes=1024)
    # Two windows so the chain has a cold tail slice (the head never spills).
    engine.add_query("Q", 3.0)
    engine.add_query("R", 0.5)
    engine.process_many(
        sorted(
            make_tuples(150, stream="A") + make_tuples(150, stream="B"),
            key=lambda t: (t.timestamp, t.seqno),
        )
    )
    store = engine._spill_store
    assert store is not None and store.directory is not None
    directory = store.directory
    engine.close()
    assert not os.path.exists(directory)
    assert engine._spill_store is None
