"""Unit tests for the sliced window join operators (Section 4, Definitions 1-3)."""

from __future__ import annotations

import pytest

from repro.engine.errors import PlanError
from repro.engine.metrics import CostCategory, MetricsCollector
from repro.operators.join import OneWayWindowJoin
from repro.operators.sliced_join import SlicedBinaryJoin, SlicedOneWayJoin
from repro.query.predicates import CrossProductCondition, EquiJoinCondition
from repro.streams.generators import generate_join_workload
from repro.streams.tuples import FEMALE, MALE, Punctuation, RefTuple, make_tuple
from tests.conftest import joined_keys


class TestSlicedOneWayJoin:
    def test_generalises_regular_one_way_join(self):
        """A[0, W] s⋉ B must behave exactly like A[W] ⋉ B."""
        data = generate_join_workload(rate_a=20, rate_b=20, duration=4.0, seed=5)
        condition = CrossProductCondition()
        sliced = SlicedOneWayJoin(0.0, 1.5, condition)
        regular = OneWayWindowJoin(1.5, condition)
        sliced_results, regular_results = [], []
        for tup in data.tuples:
            port = "left" if tup.stream == "A" else "right"
            sliced_results.extend(
                item for out, item in sliced.process(tup, port) if out == "output"
            )
            regular_results.extend(
                item for out, item in regular.process(tup, port) if out == "output"
            )
        assert joined_keys(sliced_results) == joined_keys(regular_results)

    def test_purged_tuples_are_emitted_not_discarded(self):
        join = SlicedOneWayJoin(0.0, 1.0, CrossProductCondition())
        join.process(make_tuple("A", 0.0, k=1), "left")
        out = join.process(make_tuple("B", 2.0, k=1), "right")
        purged = [item for port, item in out if port == "purged"]
        assert len(purged) == 1
        assert purged[0].timestamp == 0.0

    def test_probe_tuple_is_propagated_with_punctuation(self):
        join = SlicedOneWayJoin(0.0, 1.0, CrossProductCondition())
        b = make_tuple("B", 2.0, k=1)
        out = join.process(b, "right")
        ports = [port for port, _ in out]
        assert "propagated" in ports
        assert "punct" in ports
        propagated = [item for port, item in out if port == "propagated"]
        assert propagated == [b]

    def test_emission_order_purge_before_results_before_propagate(self):
        join = SlicedOneWayJoin(0.0, 1.0, CrossProductCondition())
        join.process(make_tuple("A", 0.0, k=1), "left")
        join.process(make_tuple("A", 1.5, k=2), "left")
        out = join.process(make_tuple("B", 2.0, k=3), "right")
        ports = [port for port, _ in out]
        assert ports.index("purged") < ports.index("output") < ports.index("propagated")

    def test_enforce_bounds_checks_lower_window(self):
        strict = SlicedOneWayJoin(1.0, 3.0, CrossProductCondition(), enforce_bounds=True)
        # Directly insert a tuple that is too fresh for the [1, 3) slice.
        strict.process(make_tuple("A", 1.9, k=1), "left")
        out = strict.process(make_tuple("B", 2.0, k=1), "right")
        assert [item for port, item in out if port == "output"] == []

    def test_punctuations_forwarded(self):
        join = SlicedOneWayJoin(0.0, 1.0, CrossProductCondition())
        punct = Punctuation(1.0)
        assert join.process(punct, "left") == [("punct", punct)]

    def test_invalid_port(self):
        join = SlicedOneWayJoin(0.0, 1.0, CrossProductCondition())
        with pytest.raises(PlanError):
            join.process(make_tuple("B", 0.0, k=1), "middle")


class TestSlicedBinaryJoin:
    def test_head_join_equivalent_to_regular_join_for_single_slice(self):
        """A[0, W] s⋈ B[0, W] fed raw arrivals equals A[W] ⋈ B[W]."""
        from repro.operators.join import SlidingWindowJoin

        data = generate_join_workload(rate_a=20, rate_b=20, duration=4.0, seed=6)
        condition = EquiJoinCondition("join_key", "join_key", key_domain=20)
        sliced = SlicedBinaryJoin(0.0, 1.5, condition)
        regular = SlidingWindowJoin(1.5, 1.5, condition)
        sliced_results, regular_results = [], []
        for tup in data.tuples:
            port = "left" if tup.stream == "A" else "right"
            sliced_results.extend(
                item for out, item in sliced.process(tup, port) if out == "output"
            )
            regular_results.extend(
                item for out, item in regular.process(tup, port) if out == "output"
            )
        assert joined_keys(sliced_results) == joined_keys(regular_results)

    def test_only_female_copies_occupy_state(self):
        join = SlicedBinaryJoin(0.0, 5.0, CrossProductCondition())
        base = make_tuple("A", 0.0, k=1)
        join.process(RefTuple(base, MALE), "chain")
        assert join.state_size() == 0
        join.process(RefTuple(base, FEMALE), "chain")
        assert join.state_size() == 1

    def test_male_purges_probes_and_propagates(self):
        join = SlicedBinaryJoin(0.0, 2.0, CrossProductCondition())
        old_b = make_tuple("B", 0.0, k=1)
        join.process(RefTuple(old_b, FEMALE), "chain")
        male_a = RefTuple(make_tuple("A", 3.0, k=2), MALE)
        out = join.process(male_a, "chain")
        ports = [port for port, _ in out]
        # The old B female is purged (forwarded on "next"), no result is
        # produced, the male is propagated and a punctuation emitted.
        next_items = [item for port, item in out if port == "next"]
        assert len(next_items) == 2
        assert isinstance(next_items[0], RefTuple) and next_items[0].is_female()
        assert next_items[1] is male_a
        assert "punct" in ports
        assert all(port != "output" for port, _ in out)

    def test_result_orientation_left_stream_first(self):
        join = SlicedBinaryJoin(0.0, 5.0, CrossProductCondition(), left_stream="A", right_stream="B")
        join.process(make_tuple("A", 0.0, k=1), "left")
        out = join.process(make_tuple("B", 1.0, k=2), "right")
        results = [item for port, item in out if port == "output"]
        assert len(results) == 1
        assert results[0].left.stream == "A"
        assert results[0].right.stream == "B"

    def test_raw_arrival_of_unknown_stream_rejected(self):
        join = SlicedBinaryJoin(0.0, 1.0, CrossProductCondition())
        with pytest.raises(PlanError):
            join.process(make_tuple("C", 0.0, k=1), "left")

    def test_chain_port_requires_reference_tuples(self):
        join = SlicedBinaryJoin(0.0, 1.0, CrossProductCondition())
        with pytest.raises(PlanError):
            join.process(make_tuple("A", 0.0, k=1), "chain")

    def test_purge_cost_is_amortised(self):
        metrics = MetricsCollector()
        join = SlicedBinaryJoin(0.0, 1.0, CrossProductCondition())
        join.bind_metrics(metrics)
        join.process(make_tuple("A", 0.0, k=1), "left")
        join.process(make_tuple("B", 0.5, k=1), "right")
        # One purge check for the surviving head on the male probe.
        assert metrics.comparisons[CostCategory.PURGE] >= 1

    def test_punctuations_forwarded(self):
        join = SlicedBinaryJoin(0.0, 1.0, CrossProductCondition())
        punct = Punctuation(2.0)
        assert join.process(punct, "chain") == [("punct", punct)]
