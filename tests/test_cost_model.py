"""Tests for the analytical cost model (Equations 1-4, Figure 11)."""

from __future__ import annotations

import pytest

from repro.core.cost_model import (
    TwoQuerySettings,
    cpu_savings_vs_pullup_grid,
    cpu_savings_vs_pushdown_grid,
    savings_grid,
    selection_pullup_cost,
    selection_pushdown_cost,
    state_slice_cost,
    state_slice_savings,
)
from repro.engine.errors import ConfigurationError


def settings(**overrides) -> TwoQuerySettings:
    base = dict(
        arrival_rate=50.0,
        window_small=60.0,
        window_large=3600.0,
        tuple_size=1.0,
        filter_selectivity=0.01,
        join_selectivity=0.1,
    )
    base.update(overrides)
    return TwoQuerySettings(**base)


class TestSettingsValidation:
    def test_windows_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            settings(window_small=100.0, window_large=50.0)

    def test_rates_and_selectivities_validated(self):
        with pytest.raises(ConfigurationError):
            settings(arrival_rate=0)
        with pytest.raises(ConfigurationError):
            settings(filter_selectivity=0)
        with pytest.raises(ConfigurationError):
            settings(join_selectivity=1.5)
        with pytest.raises(ConfigurationError):
            settings(tuple_size=0)

    def test_window_ratio(self):
        assert settings(window_small=30.0, window_large=60.0).window_ratio == pytest.approx(0.5)


class TestEquationTerms:
    def test_pullup_memory_is_twice_large_window(self):
        s = settings()
        estimate = selection_pullup_cost(s)
        assert estimate.memory == pytest.approx(2 * 50.0 * 3600.0)

    def test_pullup_cpu_terms_match_equation_1(self):
        s = settings(arrival_rate=10, window_small=1, window_large=4, join_selectivity=0.5)
        estimate = selection_pullup_cost(s)
        lam, w2, s1 = 10, 4, 0.5
        assert estimate.cpu_terms == pytest.approx(
            (2 * lam * lam * w2, 2 * lam, 2 * lam * lam * w2 * s1, 2 * lam * lam * w2 * s1)
        )

    def test_pushdown_memory_terms_match_equation_2(self):
        s = settings(arrival_rate=10, window_small=1, window_large=4, filter_selectivity=0.25)
        estimate = selection_pushdown_cost(s)
        lam, w1, w2, ssig = 10, 1, 4, 0.25
        assert estimate.memory_terms == pytest.approx(
            ((2 - ssig) * lam * w1, (1 + ssig) * lam * w2)
        )

    def test_state_slice_memory_terms_match_equation_3(self):
        s = settings(arrival_rate=10, window_small=1, window_large=4, filter_selectivity=0.25)
        estimate = state_slice_cost(s)
        lam, w1, w2, ssig = 10, 1, 4, 0.25
        assert estimate.memory_terms == pytest.approx(
            (2 * lam * w1, (1 + ssig) * lam * (w2 - w1))
        )

    def test_state_slice_memory_with_no_selection_equals_pullup(self):
        s = settings(filter_selectivity=1.0)
        assert state_slice_cost(s).memory == pytest.approx(selection_pullup_cost(s).memory)

    def test_tuple_size_scales_memory_only(self):
        small = selection_pullup_cost(settings(tuple_size=1.0))
        large = selection_pullup_cost(settings(tuple_size=2.0))
        assert large.memory == pytest.approx(2 * small.memory)
        assert large.cpu == pytest.approx(small.cpu)


class TestEquation4Savings:
    def test_closed_forms_match_direct_ratios(self):
        for rho in (0.1, 0.3, 0.7, 0.9):
            for s_sigma in (0.05, 0.4, 0.9):
                for s1 in (0.025, 0.1, 0.4):
                    s = settings(
                        window_small=rho * 100.0,
                        window_large=100.0,
                        filter_selectivity=s_sigma,
                        join_selectivity=s1,
                    )
                    savings = state_slice_savings(s)
                    pullup = selection_pullup_cost(s)
                    pushdown = selection_pushdown_cost(s)
                    sliced = state_slice_cost(s)
                    assert savings.memory_vs_pullup == pytest.approx(
                        (pullup.memory - sliced.memory) / pullup.memory, rel=1e-9
                    )
                    assert savings.memory_vs_pushdown == pytest.approx(
                        (pushdown.memory - sliced.memory) / pushdown.memory, rel=1e-9
                    )

    def test_cpu_savings_closed_forms_track_direct_ratios(self):
        # The paper drops the λ-order terms from the CPU ratios (it notes the
        # effect of λ is small for two queries); the closed forms must agree
        # with the direct ratios to within that approximation.
        s = settings(
            arrival_rate=200.0,
            window_small=30.0,
            window_large=90.0,
            filter_selectivity=0.3,
            join_selectivity=0.1,
        )
        savings = state_slice_savings(s)
        pullup = selection_pullup_cost(s)
        pushdown = selection_pushdown_cost(s)
        sliced = state_slice_cost(s)
        assert savings.cpu_vs_pullup == pytest.approx(
            (pullup.cpu - sliced.cpu) / pullup.cpu, abs=0.02
        )
        assert savings.cpu_vs_pushdown == pytest.approx(
            (pushdown.cpu - sliced.cpu) / pushdown.cpu, abs=0.02
        )

    def test_savings_are_always_non_negative(self):
        for rho in (0.05, 0.25, 0.5, 0.75, 0.95):
            for s_sigma in (0.05, 0.5, 0.95, 1.0):
                for s1 in (0.025, 0.1, 0.4):
                    s = settings(
                        window_small=rho * 100.0,
                        window_large=100.0,
                        filter_selectivity=s_sigma,
                        join_selectivity=s1,
                    )
                    savings = state_slice_savings(s)
                    assert savings.memory_vs_pullup >= -1e-12
                    assert savings.memory_vs_pushdown >= -1e-12
                    assert savings.cpu_vs_pullup >= -1e-12
                    assert savings.cpu_vs_pushdown >= -1e-12

    def test_no_selection_base_case(self):
        """With Sσ = 1 the memory saving vs pull-up vanishes (paper Section 4.3)."""
        s = settings(filter_selectivity=1.0, join_selectivity=0.1)
        savings = state_slice_savings(s)
        assert savings.memory_vs_pullup == pytest.approx(0.0)
        assert savings.cpu_vs_pullup > 0.0

    def test_extreme_settings_reach_the_paper_magnitudes(self):
        """Memory savings approach ~50% and CPU savings approach ~100%."""
        s = settings(window_small=1.0, window_large=1000.0, filter_selectivity=0.01,
                     join_selectivity=0.4)
        savings = state_slice_savings(s)
        assert savings.memory_vs_pullup > 0.45
        assert savings.cpu_vs_pullup > 0.75


class TestFigure11Grids:
    def test_savings_grid_shape_and_keys(self):
        rows = savings_grid((0.25, 0.5), (0.2, 0.8), join_selectivity=0.1)
        assert len(rows) == 4
        for row in rows:
            assert set(row) >= {
                "rho",
                "filter_selectivity",
                "memory_saving_vs_pullup_pct",
                "cpu_saving_vs_pushdown_pct",
            }
            assert row["memory_saving_vs_pullup_pct"] >= 0

    def test_memory_saving_grows_as_rho_and_ssigma_shrink(self):
        rows = savings_grid((0.1, 0.9), (0.1, 0.9))
        by_point = {
            (row["rho"], row["filter_selectivity"]): row["memory_saving_vs_pullup_pct"]
            for row in rows
        }
        assert by_point[(0.1, 0.1)] > by_point[(0.9, 0.9)]

    def test_cpu_grids_have_one_surface_per_join_selectivity(self):
        surfaces = cpu_savings_vs_pullup_grid((0.5,), (0.5,))
        assert set(surfaces) == {0.4, 0.1, 0.025}
        pushdown_surfaces = cpu_savings_vs_pushdown_grid((0.5,), (0.5,))
        assert set(pushdown_surfaces) == {0.4, 0.1, 0.025}

    def test_cpu_saving_vs_pullup_grows_with_join_selectivity(self):
        surfaces = cpu_savings_vs_pullup_grid((0.5,), (1.0 - 1e-9,))
        # With Sσ -> 1 the CPU saving vs pull-up is driven purely by S1.
        high = surfaces[0.4][0]["cpu_saving_vs_pullup_pct"]
        low = surfaces[0.025][0]["cpu_saving_vs_pullup_pct"]
        assert high > low


class TestHashProbeModel:
    def _settings(self, hash_probe: bool) -> TwoQuerySettings:
        return TwoQuerySettings(
            arrival_rate=50,
            window_small=15,
            window_large=60,
            filter_selectivity=0.5,
            join_selectivity=0.1,
            hash_probe=hash_probe,
        )

    def test_probe_factor_scales_probe_terms_only(self):
        nested = self._settings(hash_probe=False)
        hashed = self._settings(hash_probe=True)
        assert nested.probe_factor == 1.0
        assert hashed.probe_factor == pytest.approx(0.1)
        for cost_fn in (
            selection_pullup_cost,
            selection_pushdown_cost,
            state_slice_cost,
        ):
            full = cost_fn(nested)
            cheap = cost_fn(hashed)
            assert cheap.cpu < full.cpu
            assert cheap.memory == full.memory  # probing never touches state

    def test_hash_savings_recomputed_numerically(self):
        hashed = self._settings(hash_probe=True)
        savings = state_slice_savings(hashed)
        pullup = selection_pullup_cost(hashed)
        sliced = state_slice_cost(hashed)
        assert savings.cpu_vs_pullup == pytest.approx(
            (pullup.cpu - sliced.cpu) / pullup.cpu
        )
        # Memory ratios are probe-independent, so they match the closed form.
        nested = state_slice_savings(self._settings(hash_probe=False))
        assert savings.memory_vs_pullup == pytest.approx(nested.memory_vs_pullup)


class TestTwoQuerySettingsFromStatistics:
    def test_bridge_uses_measured_quantities(self):
        from repro.core.cost_model import two_query_settings_from_statistics
        from repro.core.statistics import StreamStatistics

        stats = StreamStatistics(
            arrival_rates={"A": 30.0, "B": 50.0},
            join_selectivity=0.2,
            selection_selectivities={"Q2": (0.4, None)},
        )
        settings = two_query_settings_from_statistics(
            stats, window_small=10, window_large=40, hash_probe=True
        )
        assert settings.arrival_rate == pytest.approx(40.0)
        assert settings.join_selectivity == pytest.approx(0.2)
        assert settings.filter_selectivity == pytest.approx(0.4)
        assert settings.hash_probe is True

    def test_bridge_requires_a_measured_rate(self):
        from repro.core.cost_model import two_query_settings_from_statistics
        from repro.core.statistics import StreamStatistics

        with pytest.raises(ConfigurationError):
            two_query_settings_from_statistics(
                StreamStatistics(), window_small=1, window_large=2
            )
