"""Asynchronous execution of shared plans under the scheduled executor.

The paper stresses that the chain's correctness is independent of operator
scheduling (the states stay disjoint because tuples move between slices only
through the purge queues).  These tests run the shared plans under the
queue-based round-robin executor with deliberately scarce service capacity
and verify that the answers still match the synchronous execution, that the
punctuation-driven unions still emit sorted output, and that queue memory is
observable.
"""

from __future__ import annotations

import pytest

from repro.baselines.pullup import build_pullup_plan
from repro.core.plan_builder import build_state_slice_plan
from repro.engine.executor import execute_plan
from repro.engine.plan import QueryPlan
from repro.engine.scheduler import ScheduledExecutor
from repro.operators.count_join import CountWindowJoin
from repro.query.predicates import EquiJoinCondition, selectivity_filter, selectivity_join
from repro.query.workload import build_workload
from repro.streams.generators import generate_join_workload
from tests.conftest import joined_keys, result_keys

WORKLOAD = build_workload(
    [0.5, 1.0, 2.0], join_selectivity=0.2, filter_selectivities=[1.0, 0.5, 0.5]
)
DATA = generate_join_workload(rate_a=20, rate_b=20, duration=6.0, seed=71)


class TestScheduledChain:
    @pytest.mark.parametrize("capacity", [1, 2, 6])
    def test_state_slice_answers_independent_of_service_capacity(self, capacity):
        scheduled = ScheduledExecutor(
            build_state_slice_plan(WORKLOAD),
            invocations_per_arrival=capacity,
            batch_size=1,
        ).run(DATA.tuples)
        immediate = execute_plan(build_state_slice_plan(WORKLOAD), DATA.tuples)
        assert result_keys(scheduled.results) == result_keys(immediate.results)

    def test_union_output_is_sorted_under_synchronous_execution(self):
        # Strict output ordering is guaranteed when inputs reach the unions in
        # global timestamp order (the immediate executor); the asynchronous
        # executor only guarantees the result multiset (previous test).
        report = execute_plan(build_state_slice_plan(WORKLOAD), DATA.tuples)
        for name, items in report.results.items():
            stamps = [item.timestamp for item in items]
            assert stamps == sorted(stamps), name

    def test_queue_memory_grows_when_capacity_shrinks(self):
        scarce = ScheduledExecutor(
            build_state_slice_plan(WORKLOAD), invocations_per_arrival=1, batch_size=1
        )
        ample = ScheduledExecutor(
            build_state_slice_plan(WORKLOAD), invocations_per_arrival=16, batch_size=4
        )
        scarce.run(DATA.tuples)
        ample.run(DATA.tuples)
        assert scarce.max_queue_memory() >= ample.max_queue_memory()

    def test_pullup_plan_under_scheduler_matches_immediate(self):
        scheduled = ScheduledExecutor(
            build_pullup_plan(WORKLOAD), invocations_per_arrival=2, batch_size=2
        ).run(DATA.tuples)
        immediate = execute_plan(build_pullup_plan(WORKLOAD), DATA.tuples)
        assert result_keys(scheduled.results) == result_keys(immediate.results)


class TestCountJoinInPlan:
    def test_count_window_join_runs_inside_a_query_plan(self):
        condition = EquiJoinCondition("join_key", "join_key", key_domain=25)
        plan = QueryPlan("count-plan")
        join = CountWindowJoin(10, 10, condition, name="count_join")
        plan.add_operator(join)
        plan.add_entry("A", join, "left")
        plan.add_entry("B", join, "right")
        plan.add_output("Q", join, "output")
        report = execute_plan(plan, DATA.tuples)
        assert report.results["Q"]
        assert join.state_size() == 20

    def test_count_join_plan_agrees_between_executors(self):
        condition = selectivity_join(0.3)

        def make_plan() -> QueryPlan:
            plan = QueryPlan("count-plan")
            join = CountWindowJoin(8, 8, condition, name="count_join")
            plan.add_operator(join)
            plan.add_entry("A", join, "left")
            plan.add_entry("B", join, "right")
            plan.add_output("Q", join, "output")
            return plan

        immediate = execute_plan(make_plan(), DATA.tuples)
        scheduled = ScheduledExecutor(
            make_plan(), invocations_per_arrival=1, batch_size=1
        ).run(DATA.tuples)
        assert joined_keys(immediate.results["Q"]) == joined_keys(scheduled.results["Q"])


class TestFilteredWorkloadUnderScheduler:
    def test_selections_in_chain_still_correct_asynchronously(self):
        workload = build_workload(
            [0.4, 1.2], join_selectivity=0.3, filter_selectivities=[0.5, 0.5]
        )
        scheduled = ScheduledExecutor(
            build_state_slice_plan(workload), invocations_per_arrival=2, batch_size=1
        ).run(DATA.tuples)
        immediate = execute_plan(build_state_slice_plan(workload), DATA.tuples)
        assert result_keys(scheduled.results) == result_keys(immediate.results)
        assert selectivity_filter(0.5).describe() in workload[0].left_filter.describe()
