"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv: str) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_figure_number_is_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "12"])


class TestCommands:
    def test_cost_command(self, capsys):
        out = run_cli(capsys, "cost", "--rho", "0.25", "--ssigma", "0.2", "--s1", "0.1")
        assert "state-slice" in out
        assert "memory vs pull-up" in out

    def test_table_command(self, capsys):
        out = run_cli(capsys, "table", "2")
        assert "Queue" in out
        assert "a1" in out

    def test_chains_command(self, capsys):
        out = run_cli(
            capsys,
            "chains",
            "--queries",
            "12",
            "--windows",
            "small-large",
            "--csys",
            "4.0",
        )
        assert "Mem-Opt chain (12 slices)" in out
        assert "CPU-Opt chain" in out

    def test_compare_command(self, capsys):
        out = run_cli(
            capsys,
            "compare",
            "--rate",
            "20",
            "--time-scale",
            "0.05",
            "--s1",
            "0.1",
        )
        assert "state-slice" in out
        assert "selection-pullup" in out

    def test_figure_11_command(self, capsys):
        out = run_cli(capsys, "figure", "11")
        assert "Figure 11(a)" in out
        assert "S1=0.4" in out

    def test_figure_17_command(self, capsys):
        out = run_cli(
            capsys,
            "figure",
            "17",
            "--panels",
            "b",
            "--rates",
            "20",
            "--time-scale",
            "0.05",
        )
        assert "Figure 17(b)" in out
        assert "state-slice" in out

    def test_figure_19_command(self, capsys):
        out = run_cli(
            capsys,
            "figure",
            "19",
            "--panels",
            "c",
            "--rates",
            "20",
            "--time-scale",
            "0.04",
        )
        assert "Figure 19(c)" in out
        assert "slices" in out


class TestOptimizeCommand:
    def test_optimize_nested_loop(self, capsys):
        out = run_cli(
            capsys,
            "optimize",
            "--queries",
            "12",
            "--windows",
            "small-large",
            "--csys",
            "4.0",
        )
        assert "Mem-Opt chain" in out
        assert "CPU-Opt chain" in out
        assert "nested loops" in out
        assert "CPU (cmp/s)" in out

    def test_optimize_hash_probe_model(self, capsys):
        out = run_cli(
            capsys,
            "optimize",
            "--queries",
            "3",
            "--windows",
            "uniform",
            "--probe",
            "hash",
            "--s1",
            "0.1",
        )
        assert "probe model: hash" in out
        assert "probe=hash" in out  # config label carries the probe kind

    def test_optimize_hash_merges_more_than_nested(self, capsys):
        """Hash probing shrinks the probe term, so at equal Csys the
        CPU-Opt search merges at least as aggressively as nested loops."""
        args = [
            "optimize",
            "--queries", "12", "--windows", "uniform",
            "--rate", "10", "--s1", "0.05", "--csys", "2.0",
        ]
        nested = run_cli(capsys, *args)
        hashed = run_cli(capsys, *args, "--probe", "hash")

        def cpu_opt_slices(out: str) -> int:
            for line in out.splitlines():
                if line.startswith("CPU-Opt"):
                    return int(line.split()[1])
            raise AssertionError(out)

        assert cpu_opt_slices(hashed) <= cpu_opt_slices(nested)


class TestRuntimeCommand:
    def test_runtime_demo(self, capsys):
        out = run_cli(
            capsys, "runtime", "--duration", "8", "--rate", "10", "--seed", "5"
        )
        assert "StreamEngine demo" in out
        assert "final chain" in out

    def test_runtime_stats_and_adaptive(self, capsys):
        out = run_cli(
            capsys,
            "runtime",
            "--duration",
            "16",
            "--rate",
            "20",
            "--adaptive",
            "--stats",
            "--policy-window",
            "1.5",
        )
        assert "AdaptivePolicy" in out
        assert "engine stats:" in out
        assert "migration history:" in out
        assert "StreamStatistics" in out

    def test_runtime_count_windows_with_stats(self, capsys):
        out = run_cli(
            capsys,
            "runtime",
            "--duration",
            "8",
            "--rate",
            "12",
            "--window-kind",
            "count",
            "--windows",
            "6",
            "3",
            "--stats",
        )
        assert "count windows" in out
        assert "engine stats:" in out

    def test_runtime_sharded_with_stats(self, capsys):
        out = run_cli(
            capsys,
            "runtime",
            "--duration",
            "8",
            "--rate",
            "20",
            "--shards",
            "3",
            "--stats",
        )
        assert "3 serial shard(s)" in out
        assert "ShardedStreamEngine[3x serial" in out
        assert "aggregated across shards" in out
        # The skew shares must state the modulus they were measured under
        # (ambiguous after any reshard otherwise).
        assert "per-shard arrivals (measured under modulus 3" in out
        assert "measured under modulus 3]" in out
        assert "ShardPlan[" in out

    def test_runtime_reshard_once_mid_stream(self, capsys):
        out = run_cli(
            capsys,
            "runtime",
            "--duration",
            "10",
            "--rate",
            "20",
            "--shards",
            "2",
            "--reshard",
            "4",
            "--stats",
        )
        assert "reshard 2->4" in out
        assert "reshard history:" in out
        assert "operator request (--reshard)" in out
        assert "per-shard arrivals (measured under modulus 4" in out

    def test_runtime_reshard_auto_resizes_the_session(self, capsys):
        out = run_cli(
            capsys,
            "runtime",
            "--duration",
            "12",
            "--rate",
            "30",
            "--reshard",
            "auto",
            "--stats",
        )
        # --reshard implies the sharded session even with --shards 1, and
        # the constant-rate demo overshoots one shard's target.
        assert "1 serial shard(s)" in out
        assert "reshard 1->" in out

    def test_runtime_reshard_rejects_garbage(self):
        with pytest.raises(SystemExit):
            main(["runtime", "--reshard", "bogus", "--duration", "4"])
        with pytest.raises(SystemExit):
            main(["runtime", "--reshard", "0", "--duration", "4"])

    def test_runtime_sharded_rejects_count_windows(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "runtime",
                    "--shards",
                    "2",
                    "--window-kind",
                    "count",
                    "--duration",
                    "4",
                ]
            )

    def test_runtime_sharded_rejects_adaptive(self):
        with pytest.raises(SystemExit):
            main(["runtime", "--shards", "2", "--adaptive", "--duration", "4"])


class TestCompareProbe:
    def test_compare_hash_probe(self, capsys):
        out = run_cli(
            capsys,
            "compare",
            "--rate",
            "15",
            "--time-scale",
            "0.05",
            "--probe",
            "hash",
        )
        assert "probe=hash" in out
        assert "state-slice-cpu-opt" in out
