"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv: str) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_figure_number_is_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "12"])


class TestCommands:
    def test_cost_command(self, capsys):
        out = run_cli(capsys, "cost", "--rho", "0.25", "--ssigma", "0.2", "--s1", "0.1")
        assert "state-slice" in out
        assert "memory vs pull-up" in out

    def test_table_command(self, capsys):
        out = run_cli(capsys, "table", "2")
        assert "Queue" in out
        assert "a1" in out

    def test_chains_command(self, capsys):
        out = run_cli(
            capsys,
            "chains",
            "--queries",
            "12",
            "--windows",
            "small-large",
            "--csys",
            "4.0",
        )
        assert "Mem-Opt chain (12 slices)" in out
        assert "CPU-Opt chain" in out

    def test_compare_command(self, capsys):
        out = run_cli(
            capsys,
            "compare",
            "--rate",
            "20",
            "--time-scale",
            "0.05",
            "--s1",
            "0.1",
        )
        assert "state-slice" in out
        assert "selection-pullup" in out

    def test_figure_11_command(self, capsys):
        out = run_cli(capsys, "figure", "11")
        assert "Figure 11(a)" in out
        assert "S1=0.4" in out

    def test_figure_17_command(self, capsys):
        out = run_cli(
            capsys,
            "figure",
            "17",
            "--panels",
            "b",
            "--rates",
            "20",
            "--time-scale",
            "0.05",
        )
        assert "Figure 17(b)" in out
        assert "state-slice" in out

    def test_figure_19_command(self, capsys):
        out = run_cli(
            capsys,
            "figure",
            "19",
            "--panels",
            "c",
            "--rates",
            "20",
            "--time-scale",
            "0.04",
        )
        assert "Figure 19(c)" in out
        assert "slices" in out
