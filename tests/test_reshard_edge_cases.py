"""Live resharding: planner-driven N changes with keyed state repartitioning.

Covers the reshard edge cases the differential fuzz cannot target
deterministically:

* answer preservation across grow and shrink (including the degenerate
  reshard to N=1), with results delivered *before* the reshard carried
  across the generation change;
* the layering regression: donors with different lazy-purge progress must
  merge into a chain whose slices stay time-layered (old tuples pulled
  shallower, never younger tuples pushed deeper);
* serialization — a reshard must wait for an in-flight admission, and
  re-entering a session migration on the same thread is an error, not a
  deadlock;
* process mode with a dead worker: the shard is respawned and its state
  recovered from the parent-side replay journal (an :class:`ExecutionError`
  only once the respawn budget is spent);
* hot-key skew, where :meth:`ShardPlanner.should_reshard` must *refuse* to
  grow (more shards cannot split one key);
* the keyed extract/ingest primitives at the operator, chain and engine
  layers that the reshard orchestration is built from.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.chain import SlicedJoinChain
from repro.engine.errors import ExecutionError, MigrationError, ShardingError
from repro.operators.sliced_join import SlicedBinaryJoin
from repro.query.predicates import CrossProductCondition, EquiJoinCondition
from repro.runtime import ShardedStreamEngine, ShardPlanner, StreamEngine
from repro.streams.tuples import make_tuple

CONDITION = EquiJoinCondition("join_key", "join_key", key_domain=8)


def make_stream(count=240, domain=8, spacing=0.02, start=0.0, hot_key=None):
    """A dense, deterministic two-stream arrival sequence."""
    tuples = []
    timestamp = start
    for index in range(count):
        timestamp += spacing
        # Groups of three consecutive (mixed-stream) arrivals share a key, so
        # both streams populate every key and pairs actually join.
        key = hot_key if hot_key is not None else (index // 3) % domain
        tuples.append(
            make_tuple(
                "A" if index % 2 == 0 else "B",
                timestamp,
                join_key=key,
                value=(index * 7919) % 100 / 100.0,
            )
        )
    return tuples


def pairs(results):
    return sorted((j.left.seqno, j.right.seqno) for j in results)


def run_with_reshards(tuples, schedule, shards=2, batch_size=8, probe="nested_loop"):
    """One single engine and one sharded engine over the same stream, with
    the sharded one resharding per ``schedule`` ({arrival index: target N})."""
    single = StreamEngine(CONDITION, batch_size=batch_size, probe=probe)
    sharded = ShardedStreamEngine(
        CONDITION, shards=shards, batch_size=batch_size, probe=probe
    )
    for engine in (single, sharded):
        engine.add_query("Q", 2.0)
        engine.add_query("R", 0.9)
    events = []
    for index, tup in enumerate(tuples):
        if index in schedule:
            events.append(sharded.reshard(schedule[index]))
        single.process(tup)
        sharded.process(tup)
    single.flush()
    sharded.flush()
    return single, sharded, events


# ---------------------------------------------------------------------------
# Answer preservation
# ---------------------------------------------------------------------------
def test_grow_preserves_answers():
    tuples = make_stream()
    single, sharded, events = run_with_reshards(
        tuples, {len(tuples) // 2: 4}, shards=2
    )
    assert sharded.shards == 4
    assert [e.new_shards for e in events] == [4]
    for name in ("Q", "R"):
        assert pairs(sharded.results(name)) == pairs(single.results(name))
    assert sharded.states_are_disjoint()
    assert sharded.shard_boundaries() == [sharded.boundaries] * 4


def test_shrink_to_one_is_the_degenerate_single_engine():
    tuples = make_stream()
    single, sharded, events = run_with_reshards(
        tuples, {len(tuples) // 3: 1}, shards=3
    )
    assert sharded.shards == 1
    assert events[0].old_shards == 3 and events[0].new_shards == 1
    for name in ("Q", "R"):
        assert pairs(sharded.results(name)) == pairs(single.results(name))
    # One shard holds the whole window state again.
    assert sharded.state_size() == sharded.shard_engines[0].state_size()


def test_grow_then_shrink_mid_stream():
    tuples = make_stream(count=300)
    single, sharded, events = run_with_reshards(
        tuples, {100: 4, 200: 2}, shards=1
    )
    assert [e.new_shards for e in events] == [4, 2]
    for name in ("Q", "R"):
        assert pairs(sharded.results(name)) == pairs(single.results(name))


def test_hash_probe_indexes_survive_resharding():
    tuples = make_stream()
    single, sharded, _ = run_with_reshards(
        tuples, {80: 3, 160: 2}, shards=2, probe="hash"
    )
    for name in ("Q", "R"):
        assert pairs(sharded.results(name)) == pairs(single.results(name))


def test_lazy_purge_donors_merge_into_layered_slices():
    """Regression: donors at different purge progress must re-layer.

    Keys are chosen so one shard sees long idle gaps (its purge clock lags)
    while the other stays busy; a naive per-slice merge then leaves a stale
    tuple ordered behind younger ones and an unchecked slice emits a
    too-old pair.
    """
    tuples = []
    timestamp = 0.0
    for index in range(300):
        # Bursty key pattern: long runs of one key starve the other shard.
        key = (index // 25) % 8
        timestamp += 0.02
        tuples.append(
            make_tuple(
                "A" if index % 2 == 0 else "B",
                timestamp,
                join_key=key,
                value=0.5,
            )
        )
    single, sharded, _ = run_with_reshards(tuples, {150: 1, 225: 3}, shards=4)
    for name in ("Q", "R"):
        assert pairs(sharded.results(name)) == pairs(single.results(name))


# ---------------------------------------------------------------------------
# Carryover and accounting
# ---------------------------------------------------------------------------
def test_results_delivered_before_the_reshard_are_carried():
    tuples = make_stream()
    half = len(tuples) // 2
    sharded = ShardedStreamEngine(CONDITION, shards=2, batch_size=8)
    sharded.add_query("Q", 2.0)
    sharded.process_many(tuples[:half])
    sharded.flush()
    before = pairs(sharded.results("Q"))
    assert before  # the pre-reshard generation delivered something
    event = sharded.reshard(4)
    assert event.carried_results == len(before)
    assert pairs(sharded.results("Q")) == before  # nothing lost at the cut
    sharded.process_many(tuples[half:])
    sharded.flush()
    popped = sharded.pop_results("Q")
    assert pairs(popped)[: len(before)] != []  # carryover included in the pop
    assert sharded.results("Q") == []  # and cleared with it


def test_remove_query_returns_carried_results():
    tuples = make_stream()
    sharded = ShardedStreamEngine(CONDITION, shards=2, batch_size=8)
    sharded.add_query("Q", 2.0)
    sharded.process_many(tuples[:120])
    sharded.flush()
    delivered = pairs(sharded.results("Q"))
    sharded.reshard(3)
    assert pairs(sharded.remove_query("Q")) == delivered


def test_reshard_event_and_metrics_accounting():
    tuples = make_stream()
    sharded = ShardedStreamEngine(CONDITION, shards=2, batch_size=8)
    sharded.add_query("Q", 2.0)
    sharded.process_many(tuples[:120])
    sharded.flush()
    resident = sharded.state_size()
    event = sharded.reshard(4, reason="test")
    assert event.resident_tuples == resident
    assert 0 < event.moved_tuples <= event.resident_tuples
    assert sharded.state_size() == resident  # repartitioned, not dropped
    assert sharded.reshard_events == [event]
    snapshot = sharded.merged_snapshot()
    assert snapshot["reshard.count"] == 1.0
    assert snapshot["reshard.moved"] == float(event.moved_tuples)
    # Counters of the retired generation are still in the merged view.
    assert snapshot["ingested.total"] == 120.0
    # Arrivals survive in the aggregated EngineStats too.
    assert sharded.stats.arrivals == 120


def test_statistics_epoch_resets_at_the_reshard():
    tuples = make_stream(count=240, spacing=0.02)  # 4.8 stream-seconds
    sharded = ShardedStreamEngine(CONDITION, shards=2, batch_size=8)
    sharded.add_query("Q", 2.0)
    sharded.process_many(tuples[:120])
    sharded.flush()
    event = sharded.reshard(4)
    sharded.process_many(tuples[120:])
    sharded.flush()
    stats = sharded.merged_statistics()
    # Rates are measured under the new modulus only: the estimation window
    # opens at the reshard's stream time, not at the session start.
    assert stats.window == pytest.approx(
        tuples[-1].timestamp - event.stream_time, rel=0.05
    )
    assert stats.sample_arrivals == 120


def test_noop_reshard_is_not_recorded():
    sharded = ShardedStreamEngine(CONDITION, shards=2, batch_size=8)
    sharded.add_query("Q", 2.0)
    tuples = make_stream(count=40)
    sharded.process_many(tuples)
    sharded.flush()
    event = sharded.reshard(2)
    assert event.old_shards == event.new_shards == 2
    assert event.resident_tuples == 0
    # Even a no-op reports the actual stream time of the (attempted) cut.
    assert event.stream_time == pytest.approx(tuples[-1].timestamp)
    assert sharded.reshard_events == []
    assert sharded.metrics.reshards == 0


def test_reshard_target_must_be_a_whole_number():
    sharded = ShardedStreamEngine(CONDITION, shards=2, batch_size=8)
    sharded.add_query("Q", 2.0)
    with pytest.raises(ShardingError, match="whole number"):
        sharded.reshard("auto")  # the CLI flag value, passed through raw
    with pytest.raises(ShardingError, match="whole number"):
        sharded.reshard(2.5)
    assert sharded.reshard(3.0).new_shards == 3  # integral floats are fine


# ---------------------------------------------------------------------------
# Guard rails
# ---------------------------------------------------------------------------
def test_reshard_rejects_unpartitionable_targets():
    non_equi = ShardedStreamEngine(CrossProductCondition(), shards=1)
    non_equi.add_query("Q", 1.0)
    with pytest.raises(ShardingError, match="equi-key"):
        non_equi.reshard(2)
    counts = ShardedStreamEngine(CONDITION, shards=1, window_kind="count")
    counts.add_query("Q", 5)
    with pytest.raises(ShardingError, match="count windows"):
        counts.reshard(2)
    sharded = ShardedStreamEngine(CONDITION, shards=2)
    with pytest.raises(ShardingError, match="at least 1"):
        sharded.reshard(0)


def test_reshard_waits_for_an_inflight_admission():
    """Admissions and reshards serialize: the reshard must observe either
    no admission or a fully fanned-out one, never half of one."""
    sharded = ShardedStreamEngine(CONDITION, shards=2, batch_size=8)
    sharded.add_query("Q", 2.0)
    sharded.process_many(make_stream(count=60))
    entered = threading.Event()
    release = threading.Event()
    original = sharded.shard_engines[1].add_query

    def slow_add(name, window, **kwargs):
        entered.set()
        assert release.wait(5), "test deadlock: admission never released"
        return original(name, window, **kwargs)

    sharded.shard_engines[1].add_query = slow_add
    admission = threading.Thread(target=sharded.add_query, args=("R", 0.9))
    admission.start()
    assert entered.wait(5)
    finished = []
    resharder = threading.Thread(
        target=lambda: finished.append(sharded.reshard(4))
    )
    resharder.start()
    time.sleep(0.2)
    # The admission still holds the session lock: the reshard is waiting.
    assert not finished
    release.set()
    admission.join(5)
    resharder.join(5)
    assert finished and sharded.shards == 4
    # The admission fanned out fully before the reshard ran.
    assert {q.name for q in sharded.queries()} == {"Q", "R"}
    assert sharded.shard_boundaries() == [sharded.boundaries] * 4


def test_reentrant_migration_raises_instead_of_deadlocking():
    sharded = ShardedStreamEngine(CONDITION, shards=2, batch_size=8)
    sharded.add_query("Q", 2.0)
    caught = []
    original = sharded.shard_engines[0].add_query

    def reentrant_add(name, window, **kwargs):
        try:
            sharded.reshard(3)
        except MigrationError as exc:
            caught.append(exc)
        return original(name, window, **kwargs)

    sharded.shard_engines[0].add_query = reentrant_add
    sharded.add_query("R", 0.9)
    assert caught, "re-entrant reshard should raise MigrationError"
    assert sharded.shards == 2  # the inner reshard did not run


def test_process_mode_reshard_matches_serial():
    tuples = make_stream(count=160)
    serial = ShardedStreamEngine(CONDITION, shards=2, batch_size=8)
    serial.add_query("Q", 2.0)
    with ShardedStreamEngine(
        CONDITION, shards=2, shard_mode="process", batch_size=8
    ) as procs:
        procs.add_query("Q", 2.0)
        for index, tup in enumerate(tuples):
            if index == 60:
                serial.reshard(3)
                procs.reshard(3)
            if index == 120:
                serial.reshard(1)
                procs.reshard(1)
            serial.process(tup)
            procs.process(tup)
        assert pairs(procs.results("Q")) == pairs(serial.results("Q"))
        assert procs.shards == 1


def test_process_mode_reshard_with_a_dead_worker_recovers():
    # A worker killed mid-stream no longer poisons the session: the reshard
    # path respawns it, recovers its state and undelivered results from the
    # parent-side replay journal, and the migration proceeds answer-intact.
    tuples = make_stream(count=160)
    serial = ShardedStreamEngine(CONDITION, shards=2, batch_size=8)
    serial.add_query("Q", 2.0)
    serial.process_many(tuples)
    with ShardedStreamEngine(
        CONDITION, shards=2, shard_mode="process", batch_size=8
    ) as engine:
        engine.add_query("Q", 2.0)
        engine.process_many(tuples[:80])
        engine.flush()
        engine._workers[0].terminate()
        engine._workers[0].join(5)
        event = engine.reshard(3)
        assert event.new_shards == 3
        engine.process_many(tuples[80:])
        assert pairs(engine.results("Q")) == pairs(serial.results("Q"))
        assert engine.metrics.respawns == 1


def test_process_mode_worker_death_exhausts_its_respawn_budget():
    with ShardedStreamEngine(
        CONDITION, shards=2, shard_mode="process", batch_size=8, max_respawns=0
    ) as engine:
        engine.add_query("Q", 2.0)
        engine.process_many(make_stream(count=40))
        engine.flush()
        engine._workers[0].terminate()
        engine._workers[0].join(5)
        with pytest.raises(ExecutionError, match="shard 0"):
            engine.flush()
    # close() after the failure is clean (the context manager just ran it).


# ---------------------------------------------------------------------------
# The planner policy
# ---------------------------------------------------------------------------
def planner(**overrides):
    settings = dict(
        max_shards=4,
        target_rate_per_shard=20.0,
        skew_threshold=1.5,
        window=0.4,
        hysteresis=2,
        cooldown=1.0,
        min_arrivals=16,
    )
    settings.update(overrides)
    return ShardPlanner(**settings)


def drive(engine, tuples, policy, every=16):
    decisions = []
    for index, tup in enumerate(tuples):
        engine.process(tup)
        if index % every == every - 1:
            decisions.append(policy.should_reshard(engine))
    return decisions


def test_should_reshard_recommends_growth_under_load():
    # 0.01s spacing = 100 arrivals/s against a 20/s-per-shard target.
    tuples = make_stream(count=300, spacing=0.01)
    engine = ShardedStreamEngine(CONDITION, shards=1, batch_size=8)
    engine.add_query("Q", 1.0)
    policy = planner()
    decisions = drive(engine, tuples, policy)
    fired = [d for d in decisions if d.reshard]
    assert fired, "sustained overload must eventually fire"
    assert fired[0].target > 1
    # Hysteresis: the first over-target window did not fire on its own.
    first_over = next(i for i, d in enumerate(decisions) if d.plan is not None)
    assert not decisions[first_over].reshard


def test_should_reshard_refuses_to_grow_under_hot_key_skew():
    tuples = make_stream(count=300, spacing=0.01, hot_key=5)
    engine = ShardedStreamEngine(CONDITION, shards=2, batch_size=8)
    engine.add_query("Q", 1.0)
    policy = planner(hysteresis=1)
    decisions = drive(engine, tuples, policy)
    refusals = [
        d for d in decisions if d.plan is not None and d.plan.skewed
    ]
    assert refusals, "a single hot key must register as skew"
    assert all(not d.reshard for d in refusals)
    assert any("hot-key" in d.reason for d in refusals)
    assert engine.shards == 2


def test_should_reshard_holds_on_unpartitionable_sessions():
    """The auto-resize loop must hold, not crash, on a legal shards=1
    session whose condition/window kind cannot be partitioned."""
    tuples = make_stream(count=300, spacing=0.01)
    engine = ShardedStreamEngine(CrossProductCondition(), shards=1, batch_size=8)
    engine.add_query("Q", 1.0)
    policy = planner(hysteresis=1)
    for index, tup in enumerate(tuples):
        engine.process(tup)
        if index % 16 == 15:
            assert policy.maybe_reshard(engine) is None  # never throws
    holds = [d for d in policy.decisions if "not partitionable" in d.reason]
    assert holds, "the overloaded session must explain why it cannot grow"
    assert engine.shards == 1


def test_should_reshard_cooldown_bounds_the_frequency():
    tuples = make_stream(count=400, spacing=0.01)
    engine = ShardedStreamEngine(CONDITION, shards=1, batch_size=8)
    engine.add_query("Q", 1.0)
    policy = planner(hysteresis=1, cooldown=100.0, max_shards=8)
    fired = 0
    for index, tup in enumerate(tuples):
        engine.process(tup)
        if index % 16 == 15:
            decision = policy.should_reshard(engine)
            if decision.reshard:
                engine.reshard(decision.target, reason=decision.reason)
                fired += 1
    assert fired <= 1, "the cooldown must bound the reshard frequency"


def test_plan_reports_its_measured_modulus():
    engine = ShardedStreamEngine(CONDITION, shards=2, batch_size=8)
    engine.add_query("Q", 1.0)
    engine.process_many(make_stream(count=120))
    plan = ShardPlanner().plan(engine)
    assert plan.measured_shards == 2
    assert "measured under modulus 2" in plan.describe()
    engine.reshard(3)
    plan = ShardPlanner().plan(engine)
    assert plan.measured_shards == 3


# ---------------------------------------------------------------------------
# The extract/ingest primitives
# ---------------------------------------------------------------------------
def test_operator_extract_and_ingest_by_key_predicate():
    join = SlicedBinaryJoin(0.0, 2.0, CONDITION, probe="hash")
    tuples = make_stream(count=40, spacing=0.01)
    for tup in tuples:
        join.process(tup, "left" if tup.stream == "A" else "right")
    before = {s: join.state_tuples(s) for s in ("A", "B")}
    taken = {
        s: join.extract_state(s, lambda t: t["join_key"] % 2 == 0)
        for s in ("A", "B")
    }
    for stream in ("A", "B"):
        assert all(t["join_key"] % 2 == 0 for t in taken[stream])
        assert all(t["join_key"] % 2 == 1 for t in join.state_tuples(stream))
        # Ingest splices them back in (timestamp, seqno) order.
        assert join.ingest_state(stream, taken[stream]) == len(taken[stream])
        assert join.state_tuples(stream) == before[stream]
    # The rebuilt hash index still probes correctly.
    probe = make_tuple("A", 2.0, join_key=tuples[-1]["join_key"], value=0.0)
    emitted = [e for e in join.process(probe, "left") if e[0] == "output"]
    expected = [
        t
        for t in join.state_tuples("B")
        if t["join_key"] == probe["join_key"] and probe.timestamp - t.timestamp < 2.0
    ]
    assert len(emitted) == len(expected)


def test_chain_ingest_requires_matching_boundaries():
    chain = SlicedJoinChain([0, 1, 2], CONDITION)
    donor = SlicedJoinChain([0, 2], CONDITION)
    donor.process_all(make_stream(count=20, spacing=0.01))
    state = donor.extract_keyed_state()
    assert donor.state_size() == 0
    with pytest.raises(MigrationError, match="identical boundaries"):
        chain.ingest_keyed_state(state)


def test_engine_set_boundaries_guard_rails():
    engine = StreamEngine(CONDITION, batch_size=8)
    with pytest.raises(MigrationError, match="no queries"):
        engine.set_boundaries([0.0, 1.0])
    engine.add_query("Q", 2.0)
    engine.add_query("R", 1.0)
    with pytest.raises(MigrationError, match="keep the chain end"):
        engine.set_boundaries([0.0, 3.0])
    with pytest.raises(MigrationError, match="start at 0"):
        engine.set_boundaries([1.0, 2.0])
    # Merging the inner boundary away is legal: the router's window check
    # takes over for the smaller query.
    assert engine.set_boundaries([0.0, 2.0]) == (0.0, 2.0)
    tuples = make_stream(count=80)
    reference = StreamEngine(CONDITION, batch_size=8)
    reference.add_query("Q", 2.0)
    reference.add_query("R", 1.0)
    engine.process_many(tuples)
    reference.process_many(tuples)
    engine.flush()
    reference.flush()
    for name in ("Q", "R"):
        assert pairs(engine.results(name)) == pairs(reference.results(name))


# ---------------------------------------------------------------------------
# Memory-budgeted sessions: per-shard spill budgets across reshards
# ---------------------------------------------------------------------------
def test_reshard_resplits_the_spill_budget_and_deletes_retired_segments():
    import os

    tuples = make_stream(count=300)
    single = StreamEngine(CONDITION, batch_size=8)
    sharded = ShardedStreamEngine(
        CONDITION, shards=2, batch_size=8, memory_budget_bytes=8192
    )
    assert sharded.per_shard_memory_budget == 8192 // 2
    for engine in (single, sharded):
        engine.add_query("Q", 2.0)
        engine.add_query("R", 0.9)
    retired_dirs: list[str] = []
    for index, tup in enumerate(tuples):
        if index == 120:
            # Capture the retiring generation's segment stores, then grow:
            # the session budget must be re-split under the new modulus.
            retired_dirs = [
                engine._spill_store.directory
                for engine in sharded.shard_engines
                if engine._spill_store is not None
                and engine._spill_store.directory is not None
            ]
            sharded.reshard(4)
            assert sharded.per_shard_memory_budget == 8192 // 4
            assert [e.memory_budget_bytes for e in sharded.shard_engines] == (
                [8192 // 4] * 4
            )
        if index == 220:
            sharded.reshard(1)
            # The degenerate single shard gets the whole session budget back.
            assert sharded.per_shard_memory_budget == 8192
        single.process(tup)
        sharded.process(tup)
    single.flush()
    sharded.flush()
    for name in ("Q", "R"):
        assert pairs(sharded.results(name)) == pairs(single.results(name))
    # The tight budget forced the first generation to spill, and the reshard
    # deleted its segment directories at the export cut (state crosses the
    # generation change materialized, never as segment files).
    assert retired_dirs, "the 4096 B/shard budget should have forced spilling"
    for directory in retired_dirs:
        assert not os.path.exists(directory)
    assert [e.memory_budget_bytes for e in sharded.shard_engines] == [8192]
    sharded.close()
