"""Tests for count-based window joins and count-based sliced-join chains
(the paper's Section 2 extension to count-based window constraints)."""

from __future__ import annotations

import pytest

from repro.core.count_chain import CountSlicedJoinChain
from repro.engine.errors import ChainError, PlanError
from repro.operators.count_join import CountSlicedBinaryJoin, CountWindowJoin
from repro.query.predicates import CrossProductCondition, EquiJoinCondition
from repro.streams.generators import generate_join_workload
from repro.streams.tuples import Punctuation, make_tuple
from tests.conftest import joined_keys


def reference_count_join(tuples, count, condition, left_stream="A", right_stream="B"):
    """Brute-force reference: an arriving tuple joins the most recent
    ``count`` tuples of the opposite stream."""
    pairs = []
    seen = {left_stream: [], right_stream: []}
    for tup in tuples:
        other = right_stream if tup.stream == left_stream else left_stream
        for candidate in seen[other][-count:]:
            left, right = (
                (tup, candidate) if tup.stream == left_stream else (candidate, tup)
            )
            if condition.matches(left, right):
                pairs.append((left.seqno, right.seqno))
        seen[tup.stream].append(tup)
    return sorted(pairs)


def drive(join, tuples):
    results = []
    for tup in tuples:
        port = "left" if tup.stream == "A" else "right"
        results.extend(item for out, item in join.process(tup, port) if out == "output")
    return results


class TestCountWindowJoin:
    def test_matches_reference(self):
        data = generate_join_workload(rate_a=20, rate_b=20, duration=4.0, seed=55)
        condition = EquiJoinCondition("join_key", "join_key", key_domain=10)
        join = CountWindowJoin(7, 7, condition)
        assert joined_keys(drive(join, data.tuples)) == reference_count_join(
            data.tuples, 7, condition
        )

    def test_state_never_exceeds_counts(self):
        join = CountWindowJoin(3, 2, CrossProductCondition())
        for i in range(10):
            join.process(make_tuple("A", float(i), k=i), "left")
            join.process(make_tuple("B", float(i) + 0.5, k=i), "right")
        assert len(join._left_state) == 3
        assert len(join._right_state) == 2

    def test_validation_and_punctuation(self):
        with pytest.raises(PlanError):
            CountWindowJoin(0, 3, CrossProductCondition())
        join = CountWindowJoin(2, 2, CrossProductCondition())
        assert join.process(Punctuation(1.0), "left") == []
        with pytest.raises(PlanError):
            join.process(make_tuple("A", 0.0, k=1), "middle")


class TestCountSlicedBinaryJoin:
    def test_single_slice_equals_regular_count_join(self):
        data = generate_join_workload(rate_a=15, rate_b=15, duration=4.0, seed=56)
        condition = CrossProductCondition()
        sliced = CountSlicedBinaryJoin(0, 5, condition)
        regular = CountWindowJoin(5, 5, condition)
        assert joined_keys(drive(sliced, data.tuples)) == joined_keys(
            drive(regular, data.tuples)
        )

    def test_overflow_is_forwarded_not_dropped(self):
        join = CountSlicedBinaryJoin(0, 2, CrossProductCondition())
        emitted = []
        for i in range(4):
            emitted.extend(join.process(make_tuple("A", float(i), k=i), "left"))
        forwarded_females = [
            item
            for port, item in emitted
            if port == "next" and hasattr(item, "is_female") and item.is_female()
        ]
        assert len(forwarded_females) == 2
        assert join.state_tuples("A")[0].timestamp == 2.0

    def test_validation(self):
        with pytest.raises(PlanError):
            CountSlicedBinaryJoin(3, 3, CrossProductCondition())
        join = CountSlicedBinaryJoin(0, 2, CrossProductCondition())
        with pytest.raises(PlanError):
            join.process(make_tuple("C", 0.0, k=1), "left")
        with pytest.raises(PlanError):
            join.process(make_tuple("A", 0.0, k=1), "chain")


class TestCountSlicedJoinChain:
    @pytest.mark.parametrize("boundaries", [[0, 8], [0, 3, 8], [0, 2, 5, 8]])
    def test_chain_union_equals_regular_count_join(self, boundaries):
        data = generate_join_workload(rate_a=20, rate_b=20, duration=5.0, seed=57)
        condition = EquiJoinCondition("join_key", "join_key", key_domain=8)
        chain = CountSlicedJoinChain(boundaries, condition)
        results = [joined for _, joined in chain.process_all(data.tuples)]
        assert joined_keys(results) == reference_count_join(
            data.tuples, boundaries[-1], condition
        )

    def test_prefix_answers_match_smaller_count_windows(self):
        data = generate_join_workload(rate_a=20, rate_b=20, duration=5.0, seed=58)
        condition = CrossProductCondition()
        chain = CountSlicedJoinChain([0, 4, 10], condition)
        results = chain.process_all(data.tuples)
        for count in (4, 10):
            answer = chain.results_for_count(results, count)
            assert joined_keys(answer) == reference_count_join(
                data.tuples, count, condition
            )
        with pytest.raises(ChainError):
            chain.results_for_count(results, 7)

    def test_states_disjoint_and_bounded(self):
        data = generate_join_workload(rate_a=25, rate_b=25, duration=4.0, seed=59)
        chain = CountSlicedJoinChain([0, 3, 9], CrossProductCondition())
        for tup in data.tuples:
            chain.process(tup)
            assert chain.states_are_disjoint()
            assert chain.state_size() <= 2 * 9

    def test_chain_validation(self):
        with pytest.raises(ChainError):
            CountSlicedJoinChain([1, 5], CrossProductCondition())
        with pytest.raises(ChainError):
            CountSlicedJoinChain([0], CrossProductCondition())
        with pytest.raises(ChainError):
            CountSlicedJoinChain([0, 5, 5], CrossProductCondition())

    def test_describe_and_boundaries(self):
        chain = CountSlicedJoinChain([0, 3, 9], CrossProductCondition())
        assert chain.boundaries == [0, 3, 9]
        assert "[0,3)" in chain.describe()
