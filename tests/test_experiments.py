"""Tests for the experiment configurations, harness and figure/table modules."""

from __future__ import annotations

import pytest

from repro.engine.errors import ConfigurationError
from repro.experiments.analytical import default_grid, figure_11a, figure_11b, figure_11c
from repro.experiments.chain_study import FIGURE_19_PANELS, chain_shapes
from repro.experiments.chain_study import run_panel as run_chain_panel
from repro.experiments.config import (
    FILTER_SELECTIVITIES,
    JOIN_SELECTIVITIES,
    STREAM_RATES,
    ExperimentConfig,
    SweepConfig,
    default_multi_query_config,
    default_three_query_config,
    paper_scale,
)
from repro.experiments.cpu_study import FIGURE_18_PANELS
from repro.experiments.cpu_study import run_panel as run_cpu_panel
from repro.experiments.harness import (
    STRATEGIES,
    build_plan,
    compare_strategies,
    make_stream_data,
    make_workload,
    run_strategy,
)
from repro.experiments.memory_study import FIGURE_17_PANELS
from repro.experiments.memory_study import run_panel as run_memory_panel
from repro.experiments.report import (
    format_chain_points,
    format_memory_points,
    format_savings_summary,
    format_service_rate_points,
    format_table,
    format_trace,
)
from repro.experiments.traces import PAPER_TABLE_2, table_2_full_outputs, table_2_trace

FAST = ExperimentConfig(rate=20, time_scale=0.05, query_count=3, seed=3)


class TestExperimentConfig:
    def test_paper_constants(self):
        assert STREAM_RATES == (20, 40, 60, 80)
        assert FILTER_SELECTIVITIES == (0.2, 0.5, 0.8)
        assert JOIN_SELECTIVITIES == (0.025, 0.1, 0.4)

    def test_windows_are_scaled(self):
        config = default_three_query_config("uniform", time_scale=0.1)
        assert config.windows() == (1.0, 2.0, 3.0)
        assert config.max_window == pytest.approx(3.0)
        assert config.effective_duration() == pytest.approx(12.0)

    def test_explicit_duration_wins(self):
        config = ExperimentConfig(duration=5.0)
        assert config.effective_duration() == 5.0

    def test_paper_scale_restores_true_windows(self):
        config = paper_scale(default_three_query_config("uniform"))
        assert config.windows() == (10.0, 20.0, 30.0)
        assert config.effective_duration() == 90.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(rate=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(time_scale=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(duration=-1)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(duration_windows=0.5)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(query_count=0)

    def test_with_rate_and_label(self):
        config = FAST.with_rate(60)
        assert config.rate == 60
        assert "60" in config.label()

    def test_sweep_config(self):
        sweep = SweepConfig(FAST, rates=(10, 20))
        assert [c.rate for c in sweep.configs()] == [10, 20]

    def test_multi_query_defaults(self):
        config = default_multi_query_config("small-large", query_count=12)
        assert config.query_count == 12
        assert config.filter_selectivity == 1.0


class TestHarness:
    def test_make_workload_shapes(self):
        workload = make_workload(FAST)
        assert len(workload) == 3
        assert not workload[0].has_selection
        assert workload[1].has_selection

    def test_make_stream_data_rate(self):
        data = make_stream_data(FAST)
        assert data.duration == pytest.approx(FAST.effective_duration())
        assert data.count("A") > 0

    def test_build_plan_rejects_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            build_plan("bogus", make_workload(FAST), FAST)

    def test_every_registered_strategy_runs(self):
        data = make_stream_data(FAST)
        outputs = {}
        for strategy in STRATEGIES:
            result = run_strategy(strategy, FAST, data=data)
            assert result.report.metrics.total_emitted > 0
            outputs[strategy] = result.report.metrics.total_emitted
        # All strategies answer the same queries over the same data.
        assert len(set(outputs.values())) == 1

    def test_compare_strategies_shares_the_data(self):
        results = compare_strategies(FAST, ("state-slice", "selection-pullup"))
        assert set(results) == {"state-slice", "selection-pullup"}
        assert (
            results["state-slice"].report.metrics.total_emitted
            == results["selection-pullup"].report.metrics.total_emitted
        )

    def test_strategy_result_row(self):
        result = run_strategy("state-slice", FAST)
        row = result.row()
        assert row["strategy"] == "state-slice"
        assert row["rate"] == FAST.rate
        assert row["outputs"] > 0


class TestFigure11:
    def test_grid_axes_are_open_unit_interval(self):
        rho, s_sigma = default_grid(steps=5)
        assert all(0 < v < 1 for v in rho)
        assert len(rho) == len(s_sigma) == 5

    def test_figure_11a_surfaces_are_non_negative(self):
        surfaces = figure_11a(steps=5)
        assert set(surfaces) == {"vs_pullup", "vs_pushdown"}
        for points in surfaces.values():
            assert len(points) == 25
            assert all(point.value_pct >= 0 for point in points)

    def test_figure_11a_peak_memory_saving_near_50_percent(self):
        surfaces = figure_11a(steps=9)
        assert max(p.value_pct for p in surfaces["vs_pullup"]) > 40.0

    def test_figure_11b_and_c_have_three_surfaces(self):
        for figure in (figure_11b, figure_11c):
            surfaces = figure(steps=3)
            assert set(surfaces) == {0.4, 0.1, 0.025}
            for points in surfaces.values():
                assert all(point.value_pct >= 0 for point in points)

    def test_figure_11b_savings_increase_with_join_selectivity(self):
        surfaces = figure_11b(steps=5)
        mean = lambda pts: sum(p.value_pct for p in pts) / len(pts)  # noqa: E731
        assert mean(surfaces[0.4]) > mean(surfaces[0.025])


class TestTable2:
    def test_paper_rows_are_complete(self):
        assert len(PAPER_TABLE_2) == 10
        assert PAPER_TABLE_2[0].arrival == "a1"

    def test_trace_has_ten_steps(self):
        rows = table_2_trace()
        assert len(rows) == 10
        assert [row.time for row in rows] == list(range(1, 11))

    def test_trace_first_three_steps_match_paper_exactly(self):
        rows = table_2_trace()
        for index in range(3):
            assert rows[index].state_j1 == PAPER_TABLE_2[index].state_j1
            assert rows[index].queue == PAPER_TABLE_2[index].queue
            assert rows[index].state_j2 == PAPER_TABLE_2[index].state_j2

    def test_trace_states_partition_the_arrivals(self):
        rows = table_2_trace()
        final = rows[-1]
        # Every a-tuple still alive sits in exactly one place.
        everywhere = final.state_j1 + final.queue + final.state_j2
        assert len(set(everywhere)) == len(everywhere)

    def test_chain_outputs_equal_regular_one_way_join(self):
        assert table_2_full_outputs() == {
            "(a1,b1)",
            "(a2,b1)",
            "(a3,b1)",
            "(a2,b2)",
            "(a3,b2)",
        }


class TestMeasuredFigures:
    """Small-scale sanity runs of the Figure 17/18/19 harnesses."""

    def test_figure_17_panel_shape_and_ranking(self):
        points = run_memory_panel("b", rates=(20, 40), time_scale=0.05)
        assert {p.strategy for p in points} == {
            "selection-pullup",
            "state-slice",
            "selection-pushdown",
        }
        by_strategy = {
            (p.strategy, p.rate): p.memory_tuples for p in points
        }
        for rate in (20, 40):
            assert (
                by_strategy[("state-slice", rate)]
                <= by_strategy[("selection-pullup", rate)] * 1.01
            )
        # Memory grows with the input rate for every strategy.
        assert by_strategy[("state-slice", 40)] > by_strategy[("state-slice", 20)]

    def test_figure_18_panel_state_slice_competitive(self):
        points = run_cpu_panel("f", rates=(40,), time_scale=0.05)
        rates = {p.strategy: p.service_rate for p in points}
        assert rates["state-slice"] > rates["selection-pullup"]
        assert rates["state-slice"] >= rates["selection-pushdown"] * 0.95

    def test_figure_19_panel_cpu_opt_wins_on_skewed_windows(self):
        points = run_chain_panel("c", rates=(40,), time_scale=0.04)
        rates = {p.strategy: p.service_rate for p in points}
        assert rates["state-slice-cpu-opt"] >= rates["state-slice-mem-opt"]
        shapes = chain_shapes("c", rate=40, time_scale=0.04)
        assert shapes["cpu_opt_slices"] < shapes["mem_opt_slices"]

    def test_panel_tables_cover_figures(self):
        assert set(FIGURE_17_PANELS) == set("abcdef")
        assert set(FIGURE_18_PANELS) == set("abcdef")
        assert set(FIGURE_19_PANELS) == set("abcde")


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_figure_formatters_render(self):
        memory_points = run_memory_panel("a", rates=(20,), time_scale=0.05)
        assert "state-slice" in format_memory_points(memory_points, "a")
        cpu_points = run_cpu_panel("a", rates=(20,), time_scale=0.05)
        assert "rate" in format_service_rate_points(cpu_points, "a")
        chain_points = run_chain_panel("a", rates=(20,), time_scale=0.04)
        assert "slices" in format_chain_points(chain_points, "a")

    def test_format_trace_and_savings_summary(self):
        assert "Queue" in format_trace(table_2_trace())
        summary = format_savings_summary(
            [{"x": 10.0}, {"x": 30.0}], value_key="x", title="t"
        )
        assert "mean=20.0%" in summary
        assert format_savings_summary([], value_key="x", title="t").endswith("(no data)")
