"""Tests for the shared statistics plane (core/statistics.py) and the
snapshot/diff counter machinery it is built on."""

from __future__ import annotations

import pytest

from repro.core.cpu_opt import build_cpu_opt_chain
from repro.core.merge_graph import ChainCostParameters, slice_cpu_cost
from repro.core.statistics import (
    OBS_CHAIN_MATCHES,
    OBS_CHAIN_OPPORTUNITIES,
    CalibratedPredicate,
    StreamStatistics,
    filter_observation_key,
)
from repro.engine.errors import ChainError, ConfigurationError
from repro.engine.metrics import CostCategory, MetricsCollector
from repro.query.predicates import selectivity_filter, selectivity_join
from repro.query.query import ContinuousQuery, QueryWorkload


def make_workload(s_sigma: float = 0.5) -> QueryWorkload:
    condition = selectivity_join(0.1)
    return QueryWorkload(
        [
            ContinuousQuery("Q1", window=1.0, join_condition=condition),
            ContinuousQuery(
                "Q2",
                window=3.0,
                join_condition=condition,
                left_filter=selectivity_filter(s_sigma),
            ),
        ]
    )


class TestSnapshotDiff:
    def test_snapshot_exposes_per_operator_and_per_stream_counters(self):
        metrics = MetricsCollector()
        metrics.record_invocation("join_1", 3)
        metrics.record_ingest(5, stream="A")
        metrics.record_ingest(2, stream="B")
        metrics.observe("chain.matches", 4)
        snapshot = metrics.snapshot()
        assert snapshot["invocations.join_1"] == 3.0
        assert snapshot["ingested.A"] == 5.0
        assert snapshot["ingested.B"] == 2.0
        assert snapshot["ingested.total"] == 7.0
        assert snapshot["observations.chain.matches"] == 4.0

    def test_diff_subtracts_counters_without_reset(self):
        metrics = MetricsCollector()
        metrics.count(CostCategory.PROBE, 100)
        metrics.record_ingest(10, stream="A")
        metrics.sample_memory(1.0, 5)
        before = metrics.snapshot()
        metrics.count(CostCategory.PROBE, 40)
        metrics.record_ingest(6, stream="A")
        metrics.sample_memory(3.0, 9)
        delta = metrics.snapshot().diff(before)
        assert delta["comparisons.probe"] == 40.0
        assert delta["ingested.A"] == 6.0
        assert delta["time.elapsed"] == pytest.approx(2.0)
        # The collector itself is untouched.
        assert metrics.comparisons[CostCategory.PROBE] == 140

    def test_diff_recomputes_windowed_service_rate(self):
        metrics = MetricsCollector()
        metrics.count(CostCategory.PROBE, 100)
        metrics.record_emission("Q1", 10)
        before = metrics.snapshot()
        metrics.count(CostCategory.PROBE, 50)
        metrics.record_emission("Q1", 25)
        delta = metrics.snapshot().diff(before)
        assert delta["service_rate"] == pytest.approx(25 / 50)

    def test_diff_keys_absent_earlier_count_from_zero(self):
        metrics = MetricsCollector()
        before = metrics.snapshot()
        metrics.record_invocation("late_op", 2)
        delta = metrics.snapshot().diff(before)
        assert delta["invocations.late_op"] == 2.0

    def test_windowed_rate_helper(self):
        metrics = MetricsCollector()
        metrics.sample_memory(0.0, 0)
        before = metrics.snapshot()
        metrics.record_ingest(30, stream="A")
        metrics.sample_memory(2.0, 0)
        delta = metrics.snapshot().diff(before)
        assert delta.rate("ingested.A") == pytest.approx(15.0)

    def test_merge_folds_new_counters(self):
        first = MetricsCollector()
        second = MetricsCollector()
        second.record_ingest(4, stream="A")
        second.observe("x", 2)
        second.observe_time(7.0)
        first.merge(second)
        assert first.ingested["A"] == 4
        assert first.observations["x"] == 2
        assert first.last_timestamp == 7.0


class TestStreamStatisticsConstruction:
    def test_from_workload_prior(self):
        stats = StreamStatistics.from_workload(make_workload(0.4), 25.0, 35.0)
        assert stats.rate("A") == 25.0
        assert stats.rate("B") == 35.0
        assert stats.join_selectivity == pytest.approx(0.1)
        assert stats.selection_selectivity("Q2", "left") == pytest.approx(0.4)
        assert stats.selection_selectivity("Q1", "left") is None
        assert not stats.is_estimate

    def test_from_metrics_window(self):
        metrics = MetricsCollector()
        metrics.sample_memory(0.0, 0)
        before = metrics.snapshot()
        metrics.record_ingest(40, stream="A")
        metrics.record_ingest(20, stream="B")
        metrics.observe(OBS_CHAIN_OPPORTUNITIES, 1000)
        metrics.observe(OBS_CHAIN_MATCHES, 150)
        metrics.observe(filter_observation_key("Q2", "left", "seen"), 40)
        metrics.observe(filter_observation_key("Q2", "left", "pass"), 10)
        metrics.sample_memory(2.0, 0)
        stats = StreamStatistics.from_metrics_window(before, metrics.snapshot())
        assert stats.rate("A") == pytest.approx(20.0)
        assert stats.rate("B") == pytest.approx(10.0)
        assert stats.join_selectivity == pytest.approx(0.15)
        assert stats.selection_selectivity("Q2", "left") == pytest.approx(0.25)
        assert stats.is_estimate
        assert stats.sample_arrivals == 60
        assert stats.window == pytest.approx(2.0)

    def test_from_metrics_window_omits_unmeasured_quantities(self):
        metrics = MetricsCollector()
        before = metrics.snapshot()
        stats = StreamStatistics.from_metrics_window(before, metrics.snapshot())
        assert stats.arrival_rates == {}
        assert stats.join_selectivity is None
        assert stats.selection_selectivities == {}

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamStatistics(arrival_rates={"A": -1.0})


class TestStreamStatisticsConsumers:
    def test_chain_parameters_carry_measured_quantities(self):
        stats = StreamStatistics(
            arrival_rates={"A": 12.0, "B": 14.0}, join_selectivity=0.2
        )
        params = stats.chain_parameters(system_overhead=0.75, hash_probe=True)
        assert params.arrival_rate_left == 12.0
        assert params.arrival_rate_right == 14.0
        assert params.system_overhead == 0.75
        assert params.hash_probe is True
        assert params.join_selectivity == pytest.approx(0.2)

    def test_effective_join_selectivity_override(self):
        workload = make_workload()
        declared = ChainCostParameters()
        measured = ChainCostParameters(join_selectivity=0.42)
        assert declared.effective_join_selectivity(workload) == pytest.approx(0.1)
        assert measured.effective_join_selectivity(workload) == pytest.approx(0.42)
        slice_spec = build_cpu_opt_chain(workload, declared).slices[0]
        # A larger measured S1 inflates route/hash terms deterministically.
        cost_declared = slice_cpu_cost(workload, slice_spec, declared)
        cost_measured = slice_cpu_cost(
            workload, slice_spec, ChainCostParameters(hash_probe=True, join_selectivity=0.42)
        )
        assert cost_measured.probe != cost_declared.probe

    def test_calibrated_workload_preserves_predicate_identity(self):
        workload = make_workload(0.5)
        stats = StreamStatistics(
            arrival_rates={"A": 10.0, "B": 10.0},
            selection_selectivities={"Q2": (0.15, None)},
        )
        calibrated = stats.calibrated_workload(workload)
        original = workload.query("Q2").left_filter
        replaced = calibrated.query("Q2").left_filter
        assert isinstance(replaced, CalibratedPredicate)
        assert replaced.selectivity == pytest.approx(0.15)
        assert replaced.describe() == original.describe()
        # Matching behaviour is delegated to the wrapped predicate.
        from repro.streams.tuples import make_tuple

        tup = make_tuple("A", 0.0, value=0.9)
        assert replaced.matches(tup) == original.matches(tup)
        # Queries without measurements are untouched (identity workload if
        # nothing changed).
        assert stats.calibrated_workload(make_workload(1.0)) is not None

    def test_cpu_opt_with_statistics_reacts_to_measured_selectivity(self):
        """The merge decision flips when measured Sσ diverges from declared.

        The workload declares an ineffective selection (Sσ = 1 in the data):
        under measured statistics the optimizer should merge (routing is
        cheaper than the per-slice overhead at low rate), while the declared
        strong selection (Sσ = 0.2) keeps the chain split.
        """
        condition = selectivity_join(0.05)
        workload = QueryWorkload(
            [
                ContinuousQuery("Q1", window=0.2, join_condition=condition),
                ContinuousQuery(
                    "Q2",
                    window=1.0,
                    join_condition=condition,
                    left_filter=selectivity_filter(0.2),
                ),
            ]
        )
        params = ChainCostParameters(
            arrival_rate_left=40, arrival_rate_right=40, system_overhead=0.5
        )
        declared = build_cpu_opt_chain(workload, params)
        measured = StreamStatistics(
            arrival_rates={"A": 40.0, "B": 40.0},
            join_selectivity=0.05,
            selection_selectivities={"Q2": (1.0, None)},
        )
        adapted = build_cpu_opt_chain(workload, params, statistics=measured)
        assert len(declared) == 2  # strong selection: keep the boundary
        assert len(adapted) == 1  # ineffective selection: merge it away

    def test_drift_measures_largest_relative_change(self):
        base = StreamStatistics(
            arrival_rates={"A": 10.0, "B": 10.0},
            join_selectivity=0.1,
            selection_selectivities={"Q2": (0.5, None)},
        )
        same = StreamStatistics(
            arrival_rates={"A": 10.5, "B": 9.5},
            join_selectivity=0.1,
            selection_selectivities={"Q2": (0.5, None)},
        )
        assert same.drift(base) == pytest.approx(0.05)
        shifted = StreamStatistics(
            arrival_rates={"A": 10.0, "B": 10.0},
            join_selectivity=0.1,
            selection_selectivities={"Q2": (0.2, None)},
        )
        assert shifted.drift(base) == pytest.approx(0.6)
        # Quantities measured on only one side are ignored.
        partial = StreamStatistics(arrival_rates={"A": 10.0})
        assert partial.drift(base) == 0.0

    def test_describe_mentions_origin(self):
        prior = StreamStatistics.from_workload(make_workload(), 10.0)
        assert "declared prior" in prior.describe()


class TestChainCostParameterValidation:
    def test_join_selectivity_bounds(self):
        with pytest.raises(ChainError):
            ChainCostParameters(join_selectivity=1.5)
