"""StreamEngine: online query admission over a live shared chain.

The central property (the migration-equivalence guarantee of Section 5.3):
registering or deregistering a query mid-stream, which splits/merges the
live slice boundaries, must deliver to every query exactly the results a
fresh shared plan over the same stream suffix would deliver — nothing lost,
nothing duplicated — and the delivered output must be independent of the
engine's batch size.
"""

from __future__ import annotations

import pytest

from repro.core.merge_graph import ChainCostParameters
from repro.engine.errors import MigrationError, QueryError
from repro.query.predicates import selectivity_join
from repro.runtime import CountStreamEngine, StreamEngine
from repro.streams.generators import generate_join_workload

CONDITION = selectivity_join(0.2)


def reference_pairs(tuples, window, later_range=None):
    """Brute-force suffix reference: pairs with |Ta-Tb| < window whose
    *later* tuple arrives inside ``later_range`` (arrival index interval)."""
    indexed = list(enumerate(tuples))
    pairs = set()
    for index_a, a in indexed:
        if a.stream != "A":
            continue
        for index_b, b in indexed:
            if b.stream != "B":
                continue
            if abs(a.timestamp - b.timestamp) >= window:
                continue
            if not CONDITION.matches(a, b):
                continue
            later = max(index_a, index_b)
            if later_range is not None and not (
                later_range[0] <= later < later_range[1]
            ):
                continue
            pairs.add((a.seqno, b.seqno))
    return pairs


def delivered_pairs(results):
    return [(j.left.seqno, j.right.seqno) for j in results]


@pytest.fixture(scope="module")
def stream():
    return generate_join_workload(rate_a=15, rate_b=15, duration=24.0, seed=3).tuples


class TestAdmission:
    def test_first_query_creates_chain(self):
        engine = StreamEngine(CONDITION)
        assert engine.slice_count() == 0
        engine.add_query("Q1", 4.0)
        assert engine.boundaries == (0.0, 4.0)
        assert engine.stats.migrations[-1].kind == "create"

    def test_smaller_window_splits(self):
        engine = StreamEngine(CONDITION)
        engine.add_query("Q1", 4.0)
        engine.add_query("Q2", 2.0)
        assert engine.boundaries == (0.0, 2.0, 4.0)
        assert engine.stats.migrations[-1].kind == "split"

    def test_larger_window_appends(self):
        engine = StreamEngine(CONDITION)
        engine.add_query("Q1", 4.0)
        engine.add_query("Q2", 6.0)
        assert engine.boundaries == (0.0, 4.0, 6.0)
        assert engine.stats.migrations[-1].kind == "append"

    def test_duplicate_window_needs_no_migration(self):
        engine = StreamEngine(CONDITION)
        engine.add_query("Q1", 4.0)
        engine.add_query("Q2", 4.0)
        assert engine.boundaries == (0.0, 4.0)
        assert [event.kind for event in engine.stats.migrations] == ["create"]

    def test_duplicate_name_rejected(self):
        engine = StreamEngine(CONDITION)
        engine.add_query("Q1", 4.0)
        with pytest.raises(QueryError):
            engine.add_query("Q1", 2.0)

    def test_unknown_query_rejected(self):
        engine = StreamEngine(CONDITION)
        with pytest.raises(QueryError):
            engine.remove_query("missing")
        with pytest.raises(QueryError):
            engine.results("missing")

    def test_remove_interior_boundary_merges(self):
        engine = StreamEngine(CONDITION)
        engine.add_query("Q1", 4.0)
        engine.add_query("Q2", 2.0)
        engine.remove_query("Q2")
        assert engine.boundaries == (0.0, 4.0)
        assert engine.stats.migrations[-1].kind == "merge"

    def test_remove_largest_drops_tail(self):
        engine = StreamEngine(CONDITION)
        engine.add_query("Q1", 4.0)
        engine.add_query("Q2", 6.0)
        engine.remove_query("Q2")
        assert engine.boundaries == (0.0, 4.0)
        assert engine.stats.migrations[-1].kind == "drop-tail"

    def test_last_removal_tears_down(self):
        engine = StreamEngine(CONDITION)
        engine.add_query("Q1", 4.0)
        engine.remove_query("Q1")
        assert engine.slice_count() == 0
        assert engine.boundaries == ()
        assert engine.stats.migrations[-1].kind == "teardown"


class TestMigrationEquivalence:
    """No lost or duplicated join results across split/merge migrations."""

    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_split_then_merge_matches_fresh_plan(self, stream, batch_size):
        engine = StreamEngine(CONDITION, batch_size=batch_size)
        engine.add_query("Qbig", 4.0)
        split_at = len(stream) // 3
        merge_at = 2 * len(stream) // 3
        small = None
        for index, tup in enumerate(stream):
            if index == split_at:
                engine.add_query("Qsmall", 2.0)
            if index == merge_at:
                small = engine.remove_query("Qsmall")
            engine.process(tup)
        engine.flush()

        # The survivor sees the full-stream reference: the migrations were
        # invisible to it.
        big = delivered_pairs(engine.results("Qbig"))
        assert len(big) == len(set(big)), "duplicated results"
        assert set(big) == reference_pairs(stream, 4.0)

        # The mid-stream query sees exactly what a fresh shared plan over
        # the suffix would produce: every pair whose completing tuple
        # arrived while it was registered (the shared chain already holds
        # the in-window history at admission time).
        small_pairs = delivered_pairs(small)
        assert len(small_pairs) == len(set(small_pairs)), "duplicated results"
        assert set(small_pairs) == reference_pairs(
            stream, 2.0, later_range=(split_at, merge_at)
        )

    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_appended_window_fills_from_admission(self, stream, batch_size):
        engine = StreamEngine(CONDITION, batch_size=batch_size)
        engine.add_query("Qbig", 2.0)
        extend_at = len(stream) // 2
        for index, tup in enumerate(stream):
            if index == extend_at:
                engine.add_query("Qbigger", 4.0)
            engine.process(tup)
        engine.flush()

        bigger = delivered_pairs(engine.results("Qbigger"))
        assert len(bigger) == len(set(bigger)), "duplicated results"
        got = set(bigger)
        # Upper bound: only genuine window-4 results, completed after
        # admission.
        assert got <= reference_pairs(stream, 4.0, later_range=(extend_at, len(stream)))
        # Lower bound: at least everything a fresh chain started empty at
        # admission would find (pairs where both tuples arrive after it).
        fresh = {
            pair
            for pair in reference_pairs(
                stream, 4.0, later_range=(extend_at, len(stream))
            )
            if all(
                index >= extend_at
                for index, tup in enumerate(stream)
                if tup.seqno in pair
            )
        }
        assert fresh <= got
        # And the retained in-window history makes it strictly better than
        # starting cold: window-2 pairs completed after admission are all
        # present.
        assert reference_pairs(stream, 2.0, later_range=(extend_at, len(stream))) <= got

    def test_output_identical_across_batch_sizes(self, stream):
        signatures = []
        for batch_size in (1, 7, 64):
            engine = StreamEngine(CONDITION, batch_size=batch_size)
            engine.add_query("Qbig", 4.0)
            removed = {}
            for index, tup in enumerate(stream):
                if index == len(stream) // 4:
                    engine.add_query("Qsmall", 2.0)
                if index == len(stream) // 2:
                    removed["Qsmall"] = engine.remove_query("Qsmall")
                if index == 3 * len(stream) // 4:
                    engine.add_query("Qbigger", 5.0)
                engine.process(tup)
            engine.flush()
            signatures.append(
                (
                    delivered_pairs(engine.results("Qbig")),
                    delivered_pairs(removed["Qsmall"]),
                    delivered_pairs(engine.results("Qbigger")),
                )
            )
        assert signatures[0] == signatures[1] == signatures[2]

    def test_states_stay_disjoint_across_migrations(self, stream):
        engine = StreamEngine(CONDITION, batch_size=16)
        engine.add_query("Q1", 4.0)
        checkpoints = {
            len(stream) // 5: ("add", "Q2", 2.0),
            2 * len(stream) // 5: ("add", "Q3", 3.0),
            3 * len(stream) // 5: ("remove", "Q2", None),
            4 * len(stream) // 5: ("remove", "Q3", None),
        }
        for index, tup in enumerate(stream):
            action = checkpoints.get(index)
            if action is not None:
                kind, name, window = action
                if kind == "add":
                    engine.add_query(name, window)
                else:
                    engine.remove_query(name)
                assert engine.states_are_disjoint()
            engine.process(tup)
        engine.flush()
        assert engine.states_are_disjoint()
        big = delivered_pairs(engine.results("Q1"))
        assert set(big) == reference_pairs(stream, 4.0)
        assert len(big) == len(set(big))


class TestRebalance:
    def test_rebalance_keeps_results_exact(self, stream):
        params = ChainCostParameters(
            arrival_rate_left=15, arrival_rate_right=15, system_overhead=5.0
        )
        engine = StreamEngine(CONDITION, batch_size=16)
        for name, window in (("Q1", 1.0), ("Q2", 2.0), ("Q3", 4.0)):
            engine.add_query(name, window)
        mem_opt_boundaries = engine.boundaries
        assert mem_opt_boundaries == (0.0, 1.0, 2.0, 4.0)
        half = len(stream) // 2
        for tup in stream[:half]:
            engine.process(tup)
        boundaries = engine.rebalance(params)
        # A high Csys makes merging profitable: fewer slices than Mem-Opt.
        assert len(boundaries) < len(mem_opt_boundaries)
        for tup in stream[half:]:
            engine.process(tup)
        engine.flush()
        for name, window in (("Q1", 1.0), ("Q2", 2.0), ("Q3", 4.0)):
            got = delivered_pairs(engine.results(name))
            assert len(got) == len(set(got)), "duplicated results"
            assert set(got) == reference_pairs(stream, window)

    def test_rebalance_requires_queries(self):
        engine = StreamEngine(CONDITION)
        with pytest.raises(MigrationError):
            engine.rebalance(ChainCostParameters())

    def test_rebalance_prices_hash_probing(self, monkeypatch):
        """A hash session must be rebalanced against the hash cost model,
        not nested loops, even when the caller passes default params."""
        import repro.runtime.engine as engine_module
        from repro.query.predicates import EquiJoinCondition

        captured = {}
        real = engine_module.build_cpu_opt_chain

        def spy(workload, params, statistics=None):
            captured["params"] = params
            return real(workload, params, statistics=statistics)

        monkeypatch.setattr(engine_module, "build_cpu_opt_chain", spy)
        engine = StreamEngine(
            EquiJoinCondition("join_key", "join_key", key_domain=5), probe="hash"
        )
        engine.add_query("Q1", 2.0)
        engine.add_query("Q2", 4.0)
        engine.rebalance(ChainCostParameters())
        assert captured["params"].hash_probe is True

        captured.clear()
        nested = StreamEngine(CONDITION, probe="nested_loop")
        nested.add_query("Q1", 2.0)
        nested.rebalance(ChainCostParameters())
        assert captured["params"].hash_probe is False

    def test_remove_largest_after_rebalance_sheds_merged_tail(self, stream):
        """A rebalance can merge the next-largest window's boundary away;
        removing the largest query must still shed the tail state by
        re-splitting at the new largest window first."""
        params = ChainCostParameters(
            arrival_rate_left=15, arrival_rate_right=15, system_overhead=50.0
        )
        engine = StreamEngine(CONDITION, batch_size=16)
        engine.add_query("Qsmall", 2.0)
        engine.add_query("Qbig", 6.0)
        half = len(stream) // 2
        for tup in stream[:half]:
            engine.process(tup)
        boundaries = engine.rebalance(params)
        assert boundaries == (0.0, 6.0), "high Csys should merge to one slice"
        engine.remove_query("Qbig")
        # The chain must shrink back to the remaining query's window...
        assert engine.boundaries == (0.0, 2.0)
        assert engine.stats.migrations[-1].kind == "drop-tail"
        # ...and keep producing exact results for it.
        for tup in stream[half:]:
            engine.process(tup)
        engine.flush()
        got = delivered_pairs(engine.results("Qsmall"))
        assert len(got) == len(set(got))
        assert set(got) == reference_pairs(stream, 2.0)
        # State converges to the 2-second window's occupancy: nothing older
        # than the window survives once the purges catch up.
        last_ts = stream[-1].timestamp
        ages = [
            last_ts - tup.timestamp
            for join in engine._chain.joins
            for side in ("A", "B")
            for tup in join.state_tuples(side)
        ]
        assert max(ages) < 2.0 + 1e-6


class TestSelections:
    """Per-query selections: shared push-down recomputed on add/remove."""

    def test_pushdown_placement_follows_query_set(self):
        from repro.query.predicates import attribute_gt

        hot = attribute_gt("value", 0.5)
        very_hot = attribute_gt("value", 0.8)
        engine = StreamEngine(CONDITION)
        engine.add_query("Qbig", 4.0, left_filter=hot)
        # One slice, one query: the pushed filter is the query's own.
        (front,) = engine.link_filters()
        assert front[0].describe() == hot.describe()
        assert front[1] is None

        engine.add_query("Qsmall", 2.0, left_filter=very_hot)
        filters = engine.link_filters()
        # Front: disjunction of both queries (window-ascending order);
        # link 2 (start 2.0): only the big query's window reaches it, so
        # its predicate stands alone.
        assert filters[0][0].describe() == (
            f"({very_hot.describe()} OR {hot.describe()})"
        )
        assert filters[1][0].describe() == hot.describe()

        engine.remove_query("Qsmall")
        (front,) = engine.link_filters()
        assert front[0].describe() == hot.describe()

    def test_unfiltered_query_clears_pushed_filters(self):
        from repro.query.predicates import attribute_gt

        engine = StreamEngine(CONDITION)
        engine.add_query("Qhot", 4.0, left_filter=attribute_gt("value", 0.5))
        assert engine.link_filters()[0][0] is not None
        # An unfiltered query with the same window weakens the disjunction
        # to TRUE: the pushed filter must disappear.
        engine.add_query("Qall", 4.0)
        assert engine.link_filters() == [(None, None)]

    def test_selection_results_exact_with_migrations(self, stream):
        from repro.query.predicates import attribute_gt

        hot = attribute_gt("value", 0.6)
        engine = StreamEngine(CONDITION, batch_size=16)
        engine.add_query("Qall", 4.0)
        split_at = len(stream) // 3
        removed = None
        for index, tup in enumerate(stream):
            if index == split_at:
                engine.add_query("Qhot", 2.0, left_filter=hot)
            if index == 2 * len(stream) // 3:
                removed = engine.remove_query("Qhot")
            engine.process(tup)
        engine.flush()
        assert set(delivered_pairs(engine.results("Qall"))) == reference_pairs(
            stream, 4.0
        )
        expected = {
            (a, b)
            for (a, b) in reference_pairs(
                stream, 2.0, later_range=(split_at, 2 * len(stream) // 3)
            )
            if hot.matches(next(t for t in stream if t.seqno == a))
        }
        got = delivered_pairs(removed)
        assert len(got) == len(set(got))
        assert set(got) == expected


def reference_count_pairs(tuples, count, later_range=None):
    """Brute-force count-window reference: an arriving tuple joins the
    ``count`` most recent tuples of the opposite stream; the pair counts
    when the *completing* arrival index falls inside ``later_range``."""
    pairs = set()
    seen = {"A": [], "B": []}
    for index, tup in enumerate(tuples):
        other = "B" if tup.stream == "A" else "A"
        for candidate in seen[other][-count:]:
            left, right = (
                (tup, candidate) if tup.stream == "A" else (candidate, tup)
            )
            if not CONDITION.matches(left, right):
                continue
            if later_range is not None and not (
                later_range[0] <= index < later_range[1]
            ):
                continue
            pairs.add((left.seqno, right.seqno))
        seen[tup.stream].append(tup)
    return pairs


class TestCountSessions:
    """Count-window sessions mirror the time-window admission protocol."""

    def test_admission_inside_slice_splits(self):
        engine = CountStreamEngine(CONDITION)
        engine.add_query("C1", 8)
        engine.add_query("C2", 3)
        assert engine.boundaries == (0, 3, 8)
        assert engine.stats.migrations[-1].kind == "split"

    def test_larger_count_appends_tail(self):
        engine = CountStreamEngine(CONDITION)
        engine.add_query("C1", 8)
        engine.add_query("C2", 12)
        assert engine.boundaries == (0, 8, 12)
        assert engine.stats.migrations[-1].kind == "append"

    def test_remove_interior_boundary_merges(self):
        engine = CountStreamEngine(CONDITION)
        engine.add_query("C1", 8)
        engine.add_query("C2", 3)
        engine.remove_query("C2")
        assert engine.boundaries == (0, 8)
        assert engine.stats.migrations[-1].kind == "merge"

    def test_count_windows_must_be_positive_integers(self):
        engine = CountStreamEngine(CONDITION)
        with pytest.raises(QueryError):
            engine.add_query("C1", 2.5)
        with pytest.raises(QueryError):
            engine.add_query("C1", 0)

    def test_rebalance_rejected_for_count_sessions(self):
        engine = CountStreamEngine(CONDITION)
        engine.add_query("C1", 8)
        with pytest.raises(MigrationError):
            engine.rebalance(ChainCostParameters())

    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_split_then_merge_matches_fresh_plan(self, stream, batch_size):
        """Admission inside a slice mid-stream: the small query immediately
        sees the retained rank history; the survivor sees everything."""
        engine = CountStreamEngine(CONDITION, batch_size=batch_size)
        engine.add_query("Cbig", 8)
        split_at = len(stream) // 3
        merge_at = 2 * len(stream) // 3
        small = None
        for index, tup in enumerate(stream):
            if index == split_at:
                engine.add_query("Csmall", 3)
            if index == merge_at:
                small = engine.remove_query("Csmall")
            engine.process(tup)
        engine.flush()

        big = delivered_pairs(engine.results("Cbig"))
        assert len(big) == len(set(big)), "duplicated results"
        assert set(big) == reference_count_pairs(stream, 8)

        small_pairs = delivered_pairs(small)
        assert len(small_pairs) == len(set(small_pairs)), "duplicated results"
        assert set(small_pairs) == reference_count_pairs(
            stream, 3, later_range=(split_at, merge_at)
        )

    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_appended_count_fills_from_admission(self, stream, batch_size):
        """Tail append: a larger count window admitted mid-stream fills from
        the evictions of the old tail.  Ranks beyond the old chain end were
        already discarded, so the new query starts from the retained
        count-5 history and converges to the full count-9 answer — exactly
        the results a fresh shared plan over the suffix would produce."""
        engine = CountStreamEngine(CONDITION, batch_size=batch_size)
        engine.add_query("Cbig", 5)
        extend_at = len(stream) // 2
        for index, tup in enumerate(stream):
            if index == extend_at:
                engine.add_query("Cbigger", 9)
            engine.process(tup)
        engine.flush()

        bigger = delivered_pairs(engine.results("Cbigger"))
        assert len(bigger) == len(set(bigger)), "duplicated results"
        got = set(bigger)
        # Upper bound: only genuine count-9 results completed after admission.
        assert got <= reference_count_pairs(
            stream, 9, later_range=(extend_at, len(stream))
        )
        # Lower bound 1: at least what a fresh chain started empty at
        # admission finds (pairs where both tuples arrive after admission).
        index_of = {tup.seqno: index for index, tup in enumerate(stream)}
        fresh = {
            pair
            for pair in reference_count_pairs(
                stream, 9, later_range=(extend_at, len(stream))
            )
            if all(index_of[seqno] >= extend_at for seqno in pair)
        }
        assert fresh <= got
        # Lower bound 2: the retained in-window history makes it strictly
        # better than starting cold — the count-5 results completed after
        # admission are all present.
        assert reference_count_pairs(
            stream, 5, later_range=(extend_at, len(stream))
        ) <= got

    def test_remove_largest_count_drops_tail(self, stream):
        """Largest-window removal: the tail rank slices are shed and the
        remaining query keeps producing exact results."""
        engine = CountStreamEngine(CONDITION, batch_size=16)
        engine.add_query("Csmall", 4)
        engine.add_query("Cbig", 10)
        half = len(stream) // 2
        for tup in stream[:half]:
            engine.process(tup)
        engine.remove_query("Cbig")
        assert engine.boundaries == (0, 4)
        assert engine.stats.migrations[-1].kind == "drop-tail"
        # The shed tail state is gone: every slice holds at most its capacity.
        assert engine.state_size() <= 2 * 4
        for tup in stream[half:]:
            engine.process(tup)
        engine.flush()
        got = delivered_pairs(engine.results("Csmall"))
        assert len(got) == len(set(got))
        assert set(got) == reference_count_pairs(stream, 4)

    def test_output_identical_across_batch_sizes(self, stream):
        signatures = []
        for batch_size in (1, 7, 64):
            engine = CountStreamEngine(CONDITION, batch_size=batch_size)
            engine.add_query("Cbig", 8)
            removed = {}
            for index, tup in enumerate(stream):
                if index == len(stream) // 4:
                    engine.add_query("Csmall", 3)
                if index == len(stream) // 2:
                    removed["Csmall"] = engine.remove_query("Csmall")
                if index == 3 * len(stream) // 4:
                    engine.add_query("Cbigger", 11)
                engine.process(tup)
            engine.flush()
            signatures.append(
                (
                    delivered_pairs(engine.results("Cbig")),
                    delivered_pairs(removed["Csmall"]),
                    delivered_pairs(engine.results("Cbigger")),
                )
            )
        assert signatures[0] == signatures[1] == signatures[2]

    def test_states_stay_disjoint_across_migrations(self, stream):
        engine = CountStreamEngine(CONDITION, batch_size=16)
        engine.add_query("C1", 8)
        checkpoints = {
            len(stream) // 5: ("add", "C2", 3),
            2 * len(stream) // 5: ("add", "C3", 5),
            3 * len(stream) // 5: ("remove", "C2", None),
            4 * len(stream) // 5: ("remove", "C3", None),
        }
        for index, tup in enumerate(stream):
            action = checkpoints.get(index)
            if action is not None:
                kind, name, window = action
                if kind == "add":
                    engine.add_query(name, window)
                else:
                    engine.remove_query(name)
                assert engine.states_are_disjoint()
            engine.process(tup)
        engine.flush()
        assert engine.states_are_disjoint()
        big = delivered_pairs(engine.results("C1"))
        assert set(big) == reference_count_pairs(stream, 8)
        assert len(big) == len(set(big))


class TestEngineAccounting:
    def test_stats_and_metrics(self, stream):
        engine = StreamEngine(CONDITION, batch_size=8)
        engine.add_query("Q1", 2.0)
        engine.process_many(stream[:100])
        engine.flush()
        assert engine.stats.arrivals == 100
        assert engine.stats.batches >= 100 // 8
        assert engine.metrics.tuples_ingested == 100
        assert engine.metrics.memory_samples, "memory must be sampled per batch"
        assert engine.state_size() > 0
        assert engine.stats.results_delivered == len(engine.results("Q1"))

    def test_pop_results_clears(self, stream):
        engine = StreamEngine(CONDITION, batch_size=8)
        engine.add_query("Q1", 2.0)
        engine.process_many(stream[:200])
        first = engine.pop_results("Q1")
        assert first
        assert engine.results("Q1") == []

    def test_workload_snapshot(self):
        engine = StreamEngine(CONDITION)
        engine.add_query("Q2", 4.0)
        engine.add_query("Q1", 2.0)
        workload = engine.workload()
        assert workload.window_sizes() == [2.0, 4.0]
        assert workload.names() == ["Q1", "Q2"]
