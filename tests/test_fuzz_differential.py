"""Differential fuzzing of the StreamEngine against an unshared baseline.

Each seeded scenario draws a random query set — windows (time- or
count-based), per-stream selection predicates, an equi- or non-equi join
condition, a probe algorithm and a batch size — plus a random add/remove
schedule, runs it through one shared :class:`~repro.runtime.StreamEngine`
session, and asserts that every query's delivered results are *identical*
to an independent per-query unshared baseline: a brute-force evaluation of
that query alone over the full stream, restricted to the results whose
completing tuple arrived while the query was registered.

Exactness discipline
--------------------
A query admitted mid-stream sees the history already retained by the
shared chain.  For the shared results to be *provably* equal to the
unshared baseline, that history must be complete — nothing the new query
needs may have been dropped before its admission.  Every scenario therefore
contains an **umbrella query**, registered before the first arrival and
never removed, whose window is the scenario's largest and whose per-side
predicate is the *weakest* in the scenario (the disjunction pushed in front
of any slice then always admits every tuple any query can need, and the
chain end never shrinks below any admissible window).  Within that
discipline the schedules, predicates, windows, batch sizes and probe
algorithms are unconstrained — and the pushed-down filters still drop
tuples no query needs, so the selection push-down machinery is exercised
for real (scenarios whose weakest predicate is non-trivial shed state;
see ``test_pushed_filters_do_drop_state``).

The suite runs 220 scenarios (140 time-window, 80 count-window), seeded and
deterministic, plus 60 sharded and 40 resharded scenarios (see below).
Every scenario additionally draws the batch *representation* — columnar
struct-of-arrays blocks, the tuple-at-a-time scalar path, or ``"auto"`` —
so the differential oracle covers both hot paths of PR 6; in the sharded
and resharded families the two engines draw their representation
independently, making the equality a cross-representation check.

Sharded family
--------------
The key-partitioned :class:`~repro.runtime.ShardedStreamEngine` is fuzzed
*against the single engine* (not the brute-force baseline): an equi-join
scenario is run through one unsharded session and one 2-4-shard session —
each with an independently drawn batch size and probe algorithm — and every
query's delivered pairs must agree.  The umbrella discipline applies here
too, for a subtler reason: what a mid-stream admission sees of the past is
whatever the chain *happens to retain*, and retention is purge-driven —
lazy, and lazier still per shard (a shard only purges when one of its own
keys arrives).  Under the umbrella, retained history is complete on both
sides, so both engines equal the brute-force answer and hence each other;
without it they would differ exactly by purge-timing artifacts.

A deterministic subset of the sharded scenarios (``seed % 7 == 3``) runs
the sharded engine in ``shard_mode="process"`` — real worker processes fed
through the shared-memory arrival rings — so the ring transport, the
columnar wire encoding, and the batched result pulls face the same
differential oracle as the serial driver.

Resharded family
----------------
The live-reshard primitive (:meth:`ShardedStreamEngine.reshard`) is fuzzed
the same way: each scenario interleaves the add/remove schedule with a
mid-stream reshard schedule containing at least one *grow* and one *shrink*
(to a target drawn from 1-5 shards, 1 being the degenerate single engine),
and every query's delivered pairs — including results delivered *before* a
reshard, which cross the generation change through the carryover view —
must equal the never-resharded single engine's.  The umbrella discipline is
load-bearing here for a third reason: repartitioning merges donor shards at
*different* lazy-purge progress, so retention after a reshard is exactly as
lazy as the laziest donor.
"""

from __future__ import annotations

import random

import pytest

from repro.query.predicates import (
    ComparisonPredicate,
    CrossProductCondition,
    EquiJoinCondition,
    Predicate,
    selectivity_join,
)
from repro.runtime import ShardedStreamEngine, StreamEngine
from repro.streams.tuples import StreamTuple, make_tuple

TIME_SCENARIOS = 140
COUNT_SCENARIOS = 80
SHARDED_SCENARIOS = 60
RESHARDED_SCENARIOS = 40

TIME_WINDOWS = (1.0, 1.5, 2.0, 3.0, 4.0)
COUNT_WINDOWS = (2, 3, 5, 8, 12)
THRESHOLDS = (0.15, 0.3, 0.5, 0.7, 0.85)
BATCH_SIZES = (1, 2, 5, 16, 64)
COLUMNAR_MODES = (False, True, "auto")
#: Per-engine in-core state budgets: unbudgeted, tight (a few tuples stay
#: resident — almost everything spills to the disk tier), and mid (spilling
#: starts only when several windows' state piles up).  Every scenario draws
#: one per engine, composing the spill path with admission/removal
#: schedules, both probe algorithms, columnar batches and reshards.
MEMORY_BUDGETS = (None, 2048, 32768)
ARRIVALS = 110
FOREVER = 10**9


# ---------------------------------------------------------------------------
# Scenario generation
# ---------------------------------------------------------------------------
def make_stream(rng: random.Random, key_domain: int) -> list[StreamTuple]:
    """A dense two-stream arrival sequence with controllable key density."""
    tuples = []
    timestamp = 0.0
    for _ in range(ARRIVALS):
        timestamp += rng.expovariate(8.0)
        tuples.append(
            make_tuple(
                rng.choice("AB"),
                timestamp,
                join_key=rng.randrange(key_domain),
                value=rng.random(),
            )
        )
    return tuples


def draw_condition(rng: random.Random):
    kind = rng.choice(("equi", "equi", "modular", "cross"))
    if kind == "equi":
        domain = rng.choice((3, 5, 8))
        return EquiJoinCondition("join_key", "join_key", key_domain=domain), domain
    if kind == "modular":
        return selectivity_join(rng.choice((0.2, 0.35))), 10
    return CrossProductCondition(), 10


def draw_filter(rng: random.Random) -> Predicate | None:
    if rng.random() < 0.4:
        return None
    threshold = rng.choice(THRESHOLDS)
    return ComparisonPredicate("value", ">", threshold, selectivity=1 - threshold)


def weakest(filters: list[Predicate | None]) -> Predicate | None:
    """The umbrella predicate: implied by every per-query predicate."""
    if any(predicate is None for predicate in filters):
        return None
    threshold = min(predicate.constant for predicate in filters)
    return ComparisonPredicate("value", ">", threshold, selectivity=1 - threshold)


def draw_schedule(rng: random.Random, count: int) -> list[tuple[int, int]]:
    """Per-query (admission, removal) arrival indexes; removal may be never."""
    schedule = []
    for _ in range(count):
        admit = rng.randrange(0, ARRIVALS - 20)
        remove = (
            rng.randrange(admit + 1, ARRIVALS) if rng.random() < 0.5 else FOREVER
        )
        schedule.append((admit, remove))
    return schedule


# ---------------------------------------------------------------------------
# Unshared per-query baselines (brute force over the full stream)
# ---------------------------------------------------------------------------
def baseline_time(tuples, condition, window, left_filter, right_filter, interval):
    """All pairs a time-window join delivers while the query is registered."""
    pairs = set()
    lefts = [(i, t) for i, t in enumerate(tuples) if t.stream == "A"]
    rights = [(i, t) for i, t in enumerate(tuples) if t.stream == "B"]
    for ia, a in lefts:
        for ib, b in rights:
            if abs(a.timestamp - b.timestamp) >= window:
                continue
            if not condition.matches(a, b):
                continue
            if left_filter is not None and not left_filter.matches(a):
                continue
            if right_filter is not None and not right_filter.matches(b):
                continue
            completing = max(ia, ib)
            if interval[0] <= completing < interval[1]:
                pairs.add((a.seqno, b.seqno))
    return pairs


def baseline_count(tuples, condition, count, left_filter, right_filter, interval):
    """All pairs a count-window join delivers while the query is registered.

    Window semantics of the engine: an arriving tuple joins the ``count``
    most recent tuples of the opposite stream (selections filter the
    answers, not the ranks — see the CountStreamEngine docstring).
    """
    pairs = set()
    seen = {"A": [], "B": []}
    for index, tup in enumerate(tuples):
        other = "B" if tup.stream == "A" else "A"
        for candidate in seen[other][-count:]:
            left, right = (
                (tup, candidate) if tup.stream == "A" else (candidate, tup)
            )
            if not condition.matches(left, right):
                continue
            if left_filter is not None and not left_filter.matches(left):
                continue
            if right_filter is not None and not right_filter.matches(right):
                continue
            if interval[0] <= index < interval[1]:
                pairs.add((left.seqno, right.seqno))
        seen[tup.stream].append(tup)
    return pairs


# ---------------------------------------------------------------------------
# One scenario
# ---------------------------------------------------------------------------
def run_scenario(seed: int, window_kind: str) -> None:
    rng = random.Random(seed)
    condition, key_domain = draw_condition(rng)
    tuples = make_stream(rng, key_domain)
    windows = TIME_WINDOWS if window_kind == "time" else COUNT_WINDOWS
    baseline = baseline_time if window_kind == "time" else baseline_count

    query_count = rng.randint(2, 4)
    satellite_windows = [rng.choice(windows) for _ in range(query_count)]
    left_filters = [draw_filter(rng) for _ in range(query_count)]
    right_filters = [draw_filter(rng) for _ in range(query_count)]
    schedule = draw_schedule(rng, query_count)

    # The umbrella query (see the module docstring): largest window of the
    # scenario, weakest predicate per side, registered throughout.
    umbrella_window = max(max(satellite_windows), windows[-1])
    umbrella_left = weakest(left_filters)
    umbrella_right = weakest(right_filters)

    if isinstance(condition, EquiJoinCondition):
        probe = rng.choice(("nested_loop", "hash", "auto"))
    else:
        probe = rng.choice(("nested_loop", "auto"))
    batch_size = rng.choice(BATCH_SIZES)
    memory_budget = rng.choice(MEMORY_BUDGETS)

    engine = StreamEngine(
        condition,
        batch_size=batch_size,
        window_kind=window_kind,
        probe=probe,
        columnar=rng.choice(COLUMNAR_MODES),
        memory_budget_bytes=memory_budget,
    )
    engine.add_query(
        "umbrella",
        umbrella_window,
        left_filter=umbrella_left,
        right_filter=umbrella_right,
    )
    admissions = {}
    removals = {}
    for qi, (admit, remove) in enumerate(schedule):
        admissions.setdefault(admit, []).append(qi)
        if remove < FOREVER:
            removals.setdefault(remove, []).append(qi)

    delivered: dict[str, list] = {}
    for index, tup in enumerate(tuples):
        for qi in removals.get(index, ()):
            delivered[f"Q{qi}"] = engine.remove_query(f"Q{qi}")
        for qi in admissions.get(index, ()):
            engine.add_query(
                f"Q{qi}",
                satellite_windows[qi],
                left_filter=left_filters[qi],
                right_filter=right_filters[qi],
            )
        engine.process(tup)
    engine.flush()
    assert engine.states_are_disjoint(), f"seed {seed}: overlapping slice states"
    delivered["umbrella"] = engine.results("umbrella")
    for qi, (admit, remove) in enumerate(schedule):
        if remove >= FOREVER:
            delivered[f"Q{qi}"] = engine.results(f"Q{qi}")

    specs = [("umbrella", umbrella_window, umbrella_left, umbrella_right, (0, FOREVER))]
    specs.extend(
        (
            f"Q{qi}",
            satellite_windows[qi],
            left_filters[qi],
            right_filters[qi],
            schedule[qi],
        )
        for qi in range(query_count)
    )
    label = (
        f"seed {seed} [{window_kind}] cond={condition.describe()} "
        f"probe={probe} batch={batch_size} budget={memory_budget}"
    )
    for name, window, left_filter, right_filter, interval in specs:
        got = [(j.left.seqno, j.right.seqno) for j in delivered[name]]
        assert len(got) == len(set(got)), f"{label}: {name} delivered duplicates"
        expected = baseline(
            tuples, condition, window, left_filter, right_filter, interval
        )
        assert set(got) == expected, (
            f"{label}: {name} (window {window:g}, interval {interval}) "
            f"delivered {len(got)} pairs, baseline has {len(expected)}; "
            f"missing={sorted(expected - set(got))[:5]} "
            f"extra={sorted(set(got) - expected)[:5]}"
        )


# ---------------------------------------------------------------------------
# Sharded scenarios: sharded engine ≡ single engine
# ---------------------------------------------------------------------------
def run_sharded_scenario(seed: int) -> None:
    rng = random.Random(seed)
    domain = rng.choice((3, 5, 8, 16))
    condition = EquiJoinCondition("join_key", "join_key", key_domain=domain)
    tuples = make_stream(rng, domain)

    query_count = rng.randint(2, 4)
    satellite_windows = [rng.choice(TIME_WINDOWS) for _ in range(query_count)]
    left_filters = [draw_filter(rng) for _ in range(query_count)]
    right_filters = [draw_filter(rng) for _ in range(query_count)]
    schedule = draw_schedule(rng, query_count)
    umbrella_window = max(max(satellite_windows), TIME_WINDOWS[-1])
    umbrella_left = weakest(left_filters)
    umbrella_right = weakest(right_filters)

    shards = rng.choice((2, 3, 4))
    # A deterministic subset exercises the process driver (shared-memory
    # rings + worker processes); the rest stay serial for speed.
    shard_mode = "process" if seed % 7 == 3 else "serial"
    engines = {
        "single": StreamEngine(
            condition,
            batch_size=rng.choice(BATCH_SIZES),
            probe=rng.choice(("nested_loop", "hash", "auto")),
            columnar=rng.choice(COLUMNAR_MODES),
            memory_budget_bytes=rng.choice(MEMORY_BUDGETS),
        ),
        "sharded": ShardedStreamEngine(
            condition,
            shards=shards,
            shard_mode=shard_mode,
            batch_size=rng.choice(BATCH_SIZES),
            probe=rng.choice(("nested_loop", "hash", "auto")),
            columnar=rng.choice(COLUMNAR_MODES),
            memory_budget_bytes=rng.choice(MEMORY_BUDGETS),
        ),
    }
    admissions: dict[int, list[int]] = {}
    removals: dict[int, list[int]] = {}
    for qi, (admit, remove) in enumerate(schedule):
        admissions.setdefault(admit, []).append(qi)
        if remove < FOREVER:
            removals.setdefault(remove, []).append(qi)

    delivered: dict[str, dict[str, list]] = {name: {} for name in engines}
    for engine in engines.values():
        engine.add_query(
            "umbrella",
            umbrella_window,
            left_filter=umbrella_left,
            right_filter=umbrella_right,
        )
    for index, tup in enumerate(tuples):
        for qi in removals.get(index, ()):
            for name, engine in engines.items():
                delivered[name][f"Q{qi}"] = engine.remove_query(f"Q{qi}")
        for qi in admissions.get(index, ()):
            for engine in engines.values():
                engine.add_query(
                    f"Q{qi}",
                    satellite_windows[qi],
                    left_filter=left_filters[qi],
                    right_filter=right_filters[qi],
                )
        for engine in engines.values():
            engine.process(tup)
    for name, engine in engines.items():
        engine.flush()
        delivered[name]["umbrella"] = engine.results("umbrella")
        for qi, (admit, remove) in enumerate(schedule):
            if remove >= FOREVER:
                delivered[name][f"Q{qi}"] = engine.results(f"Q{qi}")

    sharded = engines["sharded"]
    assert sharded.states_are_disjoint(), f"seed {seed}: overlapping shard slices"
    assert sharded.shard_boundaries() == (
        [sharded.boundaries] * shards
    ), f"seed {seed}: shards diverged"
    label = f"seed {seed} [sharded x{shards} {shard_mode}] domain={domain}"
    for query_name, single_results in delivered["single"].items():
        expected = [(j.left.seqno, j.right.seqno) for j in single_results]
        got = [(j.left.seqno, j.right.seqno) for j in delivered["sharded"][query_name]]
        assert len(got) == len(set(got)), f"{label}: {query_name} duplicates"
        assert sorted(got) == sorted(expected), (
            f"{label}: {query_name} delivered {len(got)} pairs vs "
            f"{len(expected)} unsharded; "
            f"missing={sorted(set(expected) - set(got))[:5]} "
            f"extra={sorted(set(got) - set(expected))[:5]}"
        )
    sharded.close()


# ---------------------------------------------------------------------------
# Resharded scenarios: mid-stream grow/shrink ≡ never-resharded single engine
# ---------------------------------------------------------------------------
def draw_reshard_schedule(
    rng: random.Random, start_shards: int
) -> list[tuple[int, int]]:
    """(arrival index, target N) pairs with at least one grow and one shrink."""
    points = sorted(rng.sample(range(10, ARRIVALS - 10), rng.randint(2, 3)))
    grow = rng.randint(start_shards + 1, 5)
    targets = [grow, rng.randint(1, grow - 1)]
    while len(targets) < len(points):
        targets.append(rng.randint(1, 5))
    return list(zip(points, targets))


def run_resharded_scenario(seed: int) -> None:
    rng = random.Random(seed)
    domain = rng.choice((3, 5, 8, 16))
    condition = EquiJoinCondition("join_key", "join_key", key_domain=domain)
    tuples = make_stream(rng, domain)

    query_count = rng.randint(2, 4)
    satellite_windows = [rng.choice(TIME_WINDOWS) for _ in range(query_count)]
    left_filters = [draw_filter(rng) for _ in range(query_count)]
    right_filters = [draw_filter(rng) for _ in range(query_count)]
    schedule = draw_schedule(rng, query_count)
    umbrella_window = max(max(satellite_windows), TIME_WINDOWS[-1])
    umbrella_left = weakest(left_filters)
    umbrella_right = weakest(right_filters)

    start_shards = rng.choice((1, 2, 3, 4))
    reshard_schedule = draw_reshard_schedule(rng, start_shards)
    reshards = dict(reshard_schedule)
    engines = {
        "single": StreamEngine(
            condition,
            batch_size=rng.choice(BATCH_SIZES),
            probe=rng.choice(("nested_loop", "hash", "auto")),
            columnar=rng.choice(COLUMNAR_MODES),
            memory_budget_bytes=rng.choice(MEMORY_BUDGETS),
        ),
        "resharded": ShardedStreamEngine(
            condition,
            shards=start_shards,
            batch_size=rng.choice(BATCH_SIZES),
            probe=rng.choice(("nested_loop", "hash", "auto")),
            columnar=rng.choice(COLUMNAR_MODES),
            memory_budget_bytes=rng.choice(MEMORY_BUDGETS),
        ),
    }
    admissions: dict[int, list[int]] = {}
    removals: dict[int, list[int]] = {}
    for qi, (admit, remove) in enumerate(schedule):
        admissions.setdefault(admit, []).append(qi)
        if remove < FOREVER:
            removals.setdefault(remove, []).append(qi)

    delivered: dict[str, dict[str, list]] = {name: {} for name in engines}
    for engine in engines.values():
        engine.add_query(
            "umbrella",
            umbrella_window,
            left_filter=umbrella_left,
            right_filter=umbrella_right,
        )
    sharded = engines["resharded"]
    for index, tup in enumerate(tuples):
        if index in reshards:
            sharded.reshard(reshards[index])
        for qi in removals.get(index, ()):
            for name, engine in engines.items():
                delivered[name][f"Q{qi}"] = engine.remove_query(f"Q{qi}")
        for qi in admissions.get(index, ()):
            for engine in engines.values():
                engine.add_query(
                    f"Q{qi}",
                    satellite_windows[qi],
                    left_filter=left_filters[qi],
                    right_filter=right_filters[qi],
                )
        for engine in engines.values():
            engine.process(tup)
    for name, engine in engines.items():
        engine.flush()
        delivered[name]["umbrella"] = engine.results("umbrella")
        for qi, (admit, remove) in enumerate(schedule):
            if remove >= FOREVER:
                delivered[name][f"Q{qi}"] = engine.results(f"Q{qi}")

    assert sharded.shards == reshard_schedule[-1][1]
    effective = 0  # a target equal to the current count is an unrecorded no-op
    current = start_shards
    for _, n in reshard_schedule:
        effective += n != current
        current = n
    assert len(sharded.reshard_events) == effective
    assert sharded.states_are_disjoint(), f"seed {seed}: overlapping shard slices"
    assert sharded.shard_boundaries() == (
        [sharded.boundaries] * sharded.shards
    ), f"seed {seed}: shards diverged"
    label = (
        f"seed {seed} [resharded {start_shards}"
        f"->{'->'.join(str(n) for _, n in reshard_schedule)}] domain={domain}"
    )
    for query_name, single_results in delivered["single"].items():
        expected = [(j.left.seqno, j.right.seqno) for j in single_results]
        got = [
            (j.left.seqno, j.right.seqno) for j in delivered["resharded"][query_name]
        ]
        assert len(got) == len(set(got)), f"{label}: {query_name} duplicates"
        assert sorted(got) == sorted(expected), (
            f"{label}: {query_name} delivered {len(got)} pairs vs "
            f"{len(expected)} unresharded; "
            f"missing={sorted(set(expected) - set(got))[:5]} "
            f"extra={sorted(set(got) - set(expected))[:5]}"
        )


# ---------------------------------------------------------------------------
# The suites: >= 200 seeded scenarios in total
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("chunk", range(14))
def test_fuzz_time_window_sessions(chunk):
    for seed in range(chunk * 10, chunk * 10 + 10):
        run_scenario(seed, "time")


@pytest.mark.parametrize("chunk", range(8))
def test_fuzz_count_window_sessions(chunk):
    for seed in range(1000 + chunk * 10, 1000 + chunk * 10 + 10):
        run_scenario(seed, "count")


@pytest.mark.parametrize("chunk", range(6))
def test_fuzz_sharded_sessions(chunk):
    for seed in range(2000 + chunk * 10, 2000 + chunk * 10 + 10):
        run_sharded_scenario(seed)


@pytest.mark.parametrize("chunk", range(4))
def test_fuzz_resharded_sessions(chunk):
    for seed in range(3000 + chunk * 10, 3000 + chunk * 10 + 10):
        run_resharded_scenario(seed)


def test_scenario_space_is_large_enough():
    """The fuzz must cover >= 200 scenarios (acceptance gate of PR 2),
    plus >= 40 mid-stream reshard scenarios (acceptance gate of PR 5)."""
    assert TIME_SCENARIOS + COUNT_SCENARIOS >= 200
    assert TIME_SCENARIOS == 14 * 10
    assert COUNT_SCENARIOS == 8 * 10
    assert SHARDED_SCENARIOS == 6 * 10
    assert RESHARDED_SCENARIOS == 4 * 10 and RESHARDED_SCENARIOS >= 40


def test_reshard_schedules_cover_grow_and_shrink():
    """Every drawable reshard schedule contains a grow and a shrink."""
    for seed in range(3000, 3000 + RESHARDED_SCENARIOS):
        rng = random.Random(seed)
        for start in (1, 2, 3, 4):
            schedule = draw_reshard_schedule(rng, start)
            counts = [start] + [n for _, n in schedule]
            points = [i for i, _ in schedule]
            assert points == sorted(points) and len(set(points)) == len(points)
            assert any(b > a for a, b in zip(counts, counts[1:])), f"seed {seed}"
            assert any(b < a for a, b in zip(counts, counts[1:])), f"seed {seed}"


def test_pushed_filters_do_drop_state():
    """At least some scenarios exercise non-trivial pushed-down filters.

    A time-window session whose weakest predicate is non-trivial must store
    strictly less state than an unfiltered session over the same stream —
    i.e. the differential equality above is not vacuous for the push-down
    path.
    """
    rng = random.Random(424242)
    tuples = make_stream(rng, 5)
    condition = EquiJoinCondition("join_key", "join_key", key_domain=5)
    strong = ComparisonPredicate("value", ">", 0.5, selectivity=0.5)

    filtered = StreamEngine(condition, batch_size=16)
    filtered.add_query("Q", 4.0, left_filter=strong, right_filter=strong)
    filtered.process_many(tuples)
    filtered.flush()

    unfiltered = StreamEngine(condition, batch_size=16)
    unfiltered.add_query("Q", 4.0)
    unfiltered.process_many(tuples)
    unfiltered.flush()

    assert filtered.state_size() < unfiltered.state_size()
    assert all(
        left is not None and right is not None
        for left, right in filtered.link_filters()
    )
