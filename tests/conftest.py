"""Shared pytest fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.query.predicates import (
    CrossProductCondition,
    EquiJoinCondition,
    selectivity_filter,
    selectivity_join,
)
from repro.query.query import ContinuousQuery, QueryWorkload
from repro.streams.generators import generate_join_workload
from repro.streams.tuples import JoinedTuple, make_tuple


# ---------------------------------------------------------------------------
# Helpers usable from any test module
# ---------------------------------------------------------------------------
def joined_keys(items) -> list[tuple[int, int]]:
    """Canonical multiset representation of joined results for comparisons."""
    keys = []
    for item in items:
        if isinstance(item, JoinedTuple):
            keys.append((item.left.seqno, item.right.seqno))
    return sorted(keys)


def result_keys(results: dict) -> dict[str, list[tuple[int, int]]]:
    """Per-query canonical result sets."""
    return {name: joined_keys(items) for name, items in results.items()}


def regular_join_reference(
    tuples,
    window: float,
    condition,
    left_stream: str = "A",
    right_stream: str = "B",
    left_filter=None,
    right_filter=None,
) -> list[tuple[int, int]]:
    """Brute-force reference implementation of A[W] ⋈ B[W] with filters.

    Directly applies the semantics of Section 2: a pair (a, b) joins when
    |Ta - Tb| < W, the join condition holds and both filters accept their
    tuple.  Quadratic — for test-sized inputs only.
    """
    lefts = [t for t in tuples if t.stream == left_stream]
    rights = [t for t in tuples if t.stream == right_stream]
    if left_filter is not None:
        lefts = [t for t in lefts if left_filter.matches(t)]
    if right_filter is not None:
        rights = [t for t in rights if right_filter.matches(t)]
    pairs = []
    for a in lefts:
        for b in rights:
            if abs(a.timestamp - b.timestamp) < window and condition.matches(a, b):
                pairs.append((a.seqno, b.seqno))
    return sorted(pairs)


def make_stream(sequence, stream="A", start=0.0, gap=1.0, key="k"):
    """Build a list of tuples with the given join-key sequence."""
    return [
        make_tuple(stream, start + index * gap, **{key: value, "value": 0.5})
        for index, value in enumerate(sequence)
    ]


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------
@pytest.fixture
def cross_condition():
    return CrossProductCondition()


@pytest.fixture
def equi_condition():
    return EquiJoinCondition("join_key", "join_key", key_domain=5)


@pytest.fixture
def small_stream_data():
    """A small deterministic Poisson two-stream workload."""
    return generate_join_workload(rate_a=15, rate_b=15, duration=6.0, seed=11)


@pytest.fixture
def two_query_workload():
    """The paper's motivating two-query example (Q1 unfiltered, Q2 filtered)."""
    condition = selectivity_join(0.2)
    return QueryWorkload(
        [
            ContinuousQuery("Q1", window=1.0, join_condition=condition),
            ContinuousQuery(
                "Q2",
                window=3.0,
                join_condition=condition,
                left_filter=selectivity_filter(0.4),
            ),
        ]
    )


@pytest.fixture
def three_query_workload_fixture():
    condition = selectivity_join(0.25)
    shared_filter = selectivity_filter(0.5)
    return QueryWorkload(
        [
            ContinuousQuery("Q1", window=0.8, join_condition=condition),
            ContinuousQuery(
                "Q2", window=1.6, join_condition=condition, left_filter=shared_filter
            ),
            ContinuousQuery(
                "Q3", window=2.8, join_condition=condition, left_filter=shared_filter
            ),
        ]
    )


@pytest.fixture
def rng():
    return random.Random(1234)
