"""Integration tests: every sharing strategy over the same stream must produce
identical per-query answers, and the resource rankings claimed by the paper
must hold on measured runs."""

from __future__ import annotations

import pytest

from repro.baselines.pullup import build_pullup_plan
from repro.baselines.pushdown import build_pushdown_plan
from repro.baselines.unshared import build_unshared_plan
from repro.core.mem_opt import build_mem_opt_chain
from repro.core.plan_builder import build_state_slice_plan
from repro.engine.executor import execute_plan
from repro.engine.scheduler import ScheduledExecutor
from repro.operators.join import SlidingWindowJoin
from repro.query.workload import build_workload
from repro.streams.generators import generate_join_workload
from tests.conftest import result_keys


WORKLOAD = build_workload(
    [0.6, 1.2, 2.4], join_selectivity=0.15, filter_selectivities=[1.0, 0.5, 0.5]
)
DATA = generate_join_workload(rate_a=25, rate_b=25, duration=8.0, seed=41)

BUILDERS = {
    "state-slice": lambda: build_state_slice_plan(WORKLOAD),
    "selection-pullup": lambda: build_pullup_plan(WORKLOAD),
    "selection-pushdown": lambda: build_pushdown_plan(WORKLOAD),
    "unshared": lambda: build_unshared_plan(WORKLOAD),
}


@pytest.fixture(scope="module")
def reports():
    return {
        name: execute_plan(builder(), DATA.tuples, strategy=name, system_overhead=0.5)
        for name, builder in BUILDERS.items()
    }


class TestAnswerEquivalence:
    def test_all_strategies_agree_per_query(self, reports):
        expected = result_keys(reports["unshared"].results)
        for name, report in reports.items():
            assert result_keys(report.results) == expected, name

    def test_every_query_produces_results(self, reports):
        counts = reports["state-slice"].output_counts()
        assert all(count > 0 for count in counts.values())

    def test_larger_windows_produce_supersets(self, reports):
        # Q2 and Q3 share the same selection, so the larger window strictly
        # extends the smaller one's answer (Q1 has no selection and is not
        # comparable).
        keys = result_keys(reports["state-slice"].results)
        assert set(keys["Q2"]) <= set(keys["Q3"])

    def test_scheduled_executor_agrees_with_immediate(self):
        plan = build_state_slice_plan(WORKLOAD)
        scheduled = ScheduledExecutor(plan, invocations_per_arrival=3, batch_size=2).run(
            DATA.tuples
        )
        immediate = execute_plan(build_state_slice_plan(WORKLOAD), DATA.tuples)
        assert result_keys(scheduled.results) == result_keys(immediate.results)


class TestResourceRankings:
    def test_state_slice_has_lowest_state_memory(self, reports):
        state_slice = reports["state-slice"].steady_state_memory
        for name in ("selection-pullup", "selection-pushdown", "unshared"):
            assert state_slice <= reports[name].steady_state_memory * 1.01, name

    def test_state_slice_beats_pullup_on_cpu(self, reports):
        assert reports["state-slice"].cpu_cost < reports["selection-pullup"].cpu_cost

    def test_sharing_beats_unshared_on_memory(self, reports):
        assert reports["state-slice"].steady_state_memory < (
            reports["unshared"].steady_state_memory
        )

    def test_theorem_3_chain_state_equals_single_largest_join(self):
        """Measured Mem-Opt chain state == state of one join with the largest window."""
        chain_plan = build_state_slice_plan(
            build_workload([0.6, 1.2, 2.4], join_selectivity=0.15),
            chain=build_mem_opt_chain(build_workload([0.6, 1.2, 2.4], join_selectivity=0.15)),
        )
        single = SlidingWindowJoin(2.4, 2.4, WORKLOAD.join_condition, name="single")
        chain_report = execute_plan(chain_plan, DATA.tuples)
        for tup in DATA.tuples:
            port = "left" if tup.stream == "A" else "right"
            single.process(tup, port)
        # Compare the final-state occupancy: the chain distributes exactly the
        # same tuples across its slices (no selections in this workload).
        chain_state = sum(
            op.state_size()
            for op in chain_plan.operators.values()
            if hasattr(op, "slice")
        )
        assert chain_state == single.state_size()
        assert chain_report.total_output > 0

    def test_service_rate_positive_for_all(self, reports):
        for name, report in reports.items():
            assert report.service_rate > 0, name
