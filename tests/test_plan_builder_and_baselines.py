"""Tests for the executable shared plans: the state-slice plan builder, the
selection push-down helpers, and the three baseline strategies."""

from __future__ import annotations

import pytest

from repro.baselines.pullup import build_pullup_plan
from repro.baselines.pushdown import build_pushdown_plan
from repro.baselines.unshared import build_unshared_plan
from repro.core.cpu_opt import build_cpu_opt_chain
from repro.core.mem_opt import build_mem_opt_chain
from repro.core.merge_graph import ChainCostParameters
from repro.core.plan_builder import build_state_slice_plan
from repro.core.pushdown import pushed_filters, residual_filters
from repro.engine.errors import ConfigurationError
from repro.engine.executor import execute_plan
from repro.operators.router import Router
from repro.operators.selection import StreamFilter
from repro.operators.sliced_join import SlicedBinaryJoin
from repro.operators.union import OrderedUnion
from repro.query.predicates import selectivity_filter, selectivity_join
from repro.query.query import ContinuousQuery, QueryWorkload, workload_from_windows
from tests.conftest import joined_keys, regular_join_reference


def per_query_reference(workload, tuples):
    """Reference per-query answers computed by brute force."""
    return {
        query.name: regular_join_reference(
            tuples,
            window=query.window,
            condition=query.join_condition,
            left_filter=query.left_filter,
            right_filter=query.right_filter,
        )
        for query in workload
    }


def assert_plan_matches_reference(plan, workload, tuples):
    report = execute_plan(plan, tuples)
    reference = per_query_reference(workload, tuples)
    for query in workload:
        assert joined_keys(report.results[query.name]) == reference[query.name], query.name
    return report


class TestPushdownHelpers:
    def test_pushed_filters_disjunction(self, two_query_workload):
        chain = build_mem_opt_chain(two_query_workload)
        first = pushed_filters(two_query_workload, chain.slices[0])
        second = pushed_filters(two_query_workload, chain.slices[1])
        assert first.is_trivial
        assert not second.is_trivial
        assert second.left.describe() == two_query_workload.query("Q2").left_filter.describe()

    def test_residual_filters(self, two_query_workload):
        chain = build_mem_opt_chain(two_query_workload)
        q2 = two_query_workload.query("Q2")
        on_first_slice = residual_filters(two_query_workload, chain, q2, 0)
        on_second_slice = residual_filters(two_query_workload, chain, q2, 1)
        assert on_first_slice.left.describe() == q2.left_filter.describe()
        assert on_second_slice.is_trivial
        q1 = two_query_workload.query("Q1")
        assert residual_filters(two_query_workload, chain, q1, 0).is_trivial


class TestStateSlicePlanStructure:
    def test_two_query_plan_matches_figure_10(self, two_query_workload):
        plan = build_state_slice_plan(two_query_workload)
        operators = plan.operators
        joins = [op for op in operators.values() if isinstance(op, SlicedBinaryJoin)]
        filters = [op for op in operators.values() if isinstance(op, StreamFilter)]
        routers = [op for op in operators.values() if isinstance(op, Router)]
        unions = [op for op in operators.values() if isinstance(op, OrderedUnion)]
        assert len(joins) == 2
        assert len(filters) == 1          # σA pushed between the two slices
        assert len(routers) == 1          # σ'A applied to slice-1 results for Q2
        assert len(unions) == 1           # Q2 unions both slices; Q1 taps slice 1
        assert set(plan.output_names()) == {"Q1", "Q2"}

    def test_slice_windows_follow_the_chain(self, two_query_workload):
        plan = build_state_slice_plan(two_query_workload)
        joins = sorted(
            (op for op in plan.operators.values() if isinstance(op, SlicedBinaryJoin)),
            key=lambda op: op.slice.start,
        )
        assert (joins[0].slice.start, joins[0].slice.end) == (0.0, 1.0)
        assert (joins[1].slice.start, joins[1].slice.end) == (1.0, 3.0)

    def test_no_selection_workload_has_no_filters_or_routers(self):
        workload = workload_from_windows([1.0, 2.0, 3.0], selectivity_join(0.2))
        plan = build_state_slice_plan(workload)
        assert not any(isinstance(op, StreamFilter) for op in plan.operators.values())
        assert not any(isinstance(op, Router) for op in plan.operators.values())

    def test_cpu_opt_chain_plan_contains_router_for_merged_slice(self):
        workload = workload_from_windows([1.0, 1.2, 5.0], selectivity_join(0.2))
        params = ChainCostParameters(
            arrival_rate_left=50, arrival_rate_right=50, system_overhead=2.0
        )
        chain = build_cpu_opt_chain(workload, params)
        if len(chain) == len(workload.window_sizes()):
            pytest.skip("cost parameters did not trigger a merge")
        plan = build_state_slice_plan(workload, chain=chain)
        assert any(isinstance(op, Router) for op in plan.operators.values())


class TestStateSlicePlanCorrectness:
    def test_two_query_results(self, two_query_workload, small_stream_data):
        plan = build_state_slice_plan(two_query_workload)
        assert_plan_matches_reference(plan, two_query_workload, small_stream_data.tuples)

    def test_three_query_results(self, three_query_workload_fixture, small_stream_data):
        plan = build_state_slice_plan(three_query_workload_fixture)
        assert_plan_matches_reference(
            plan, three_query_workload_fixture, small_stream_data.tuples
        )

    def test_results_without_selection_pushdown(self, three_query_workload_fixture, small_stream_data):
        plan = build_state_slice_plan(three_query_workload_fixture, push_selections=False)
        assert_plan_matches_reference(
            plan, three_query_workload_fixture, small_stream_data.tuples
        )

    def test_cpu_opt_chain_results(self, small_stream_data):
        workload = workload_from_windows([0.5, 0.7, 2.0], selectivity_join(0.3))
        params = ChainCostParameters(
            arrival_rate_left=30, arrival_rate_right=30, system_overhead=2.0
        )
        chain = build_cpu_opt_chain(workload, params)
        plan = build_state_slice_plan(workload, chain=chain)
        assert_plan_matches_reference(plan, workload, small_stream_data.tuples)

    def test_filters_on_both_streams(self, small_stream_data):
        condition = selectivity_join(0.4)
        workload = QueryWorkload(
            [
                ContinuousQuery("Q1", window=0.8, join_condition=condition,
                                right_filter=selectivity_filter(0.6)),
                ContinuousQuery("Q2", window=2.0, join_condition=condition,
                                left_filter=selectivity_filter(0.5)),
            ]
        )
        plan = build_state_slice_plan(workload)
        assert_plan_matches_reference(plan, workload, small_stream_data.tuples)

    def test_every_query_filtered_installs_entry_filter(self, small_stream_data):
        condition = selectivity_join(0.4)
        shared = selectivity_filter(0.5)
        workload = QueryWorkload(
            [
                ContinuousQuery("Q1", window=0.8, join_condition=condition, left_filter=shared),
                ContinuousQuery("Q2", window=2.0, join_condition=condition, left_filter=shared),
            ]
        )
        plan = build_state_slice_plan(workload)
        assert "entry_filter_left" in plan.operators
        assert_plan_matches_reference(plan, workload, small_stream_data.tuples)

    def test_single_query_degenerates_to_one_slice(self, small_stream_data):
        workload = workload_from_windows([1.5], selectivity_join(0.3))
        plan = build_state_slice_plan(workload)
        joins = [op for op in plan.operators.values() if isinstance(op, SlicedBinaryJoin)]
        assert len(joins) == 1
        assert_plan_matches_reference(plan, workload, small_stream_data.tuples)


class TestBaselines:
    def test_pullup_results(self, three_query_workload_fixture, small_stream_data):
        plan = build_pullup_plan(three_query_workload_fixture)
        assert_plan_matches_reference(
            plan, three_query_workload_fixture, small_stream_data.tuples
        )

    def test_pullup_uses_a_single_join_with_the_largest_window(self, three_query_workload_fixture):
        plan = build_pullup_plan(three_query_workload_fixture)
        join = plan.operator("shared_join")
        assert join.window_left == three_query_workload_fixture.max_window

    def test_pushdown_results(self, three_query_workload_fixture, small_stream_data):
        plan = build_pushdown_plan(three_query_workload_fixture)
        assert_plan_matches_reference(
            plan, three_query_workload_fixture, small_stream_data.tuples
        )

    def test_pushdown_without_selections_falls_back_to_pullup_shape(self):
        workload = workload_from_windows([1.0, 2.0], selectivity_join(0.2))
        plan = build_pushdown_plan(workload)
        assert "shared_join" in plan.operators

    def test_pushdown_rejects_right_stream_filters(self):
        condition = selectivity_join(0.2)
        workload = QueryWorkload(
            [
                ContinuousQuery("Q1", window=1.0, join_condition=condition,
                                right_filter=selectivity_filter(0.5)),
                ContinuousQuery("Q2", window=2.0, join_condition=condition),
            ]
        )
        with pytest.raises(ConfigurationError):
            build_pushdown_plan(workload)

    def test_pushdown_rejects_multiple_distinct_predicates(self):
        condition = selectivity_join(0.2)
        workload = QueryWorkload(
            [
                ContinuousQuery("Q1", window=1.0, join_condition=condition,
                                left_filter=selectivity_filter(0.3)),
                ContinuousQuery("Q2", window=2.0, join_condition=condition,
                                left_filter=selectivity_filter(0.7)),
            ]
        )
        with pytest.raises(ConfigurationError):
            build_pushdown_plan(workload)

    def test_unshared_results(self, three_query_workload_fixture, small_stream_data):
        plan = build_unshared_plan(three_query_workload_fixture)
        assert_plan_matches_reference(
            plan, three_query_workload_fixture, small_stream_data.tuples
        )

    def test_unshared_plan_has_one_join_per_query(self, three_query_workload_fixture):
        plan = build_unshared_plan(three_query_workload_fixture)
        join_names = [name for name in plan.operators if name.startswith("join_")]
        assert len(join_names) == len(three_query_workload_fixture)

    def test_hash_algorithm_variants_agree(self, small_stream_data):
        condition = selectivity_join(1.0)  # cross product cannot use hash
        workload = workload_from_windows([1.0, 2.0], selectivity_join(0.2))
        # Only meaningful for equi-joins; here just confirm the nested-loop
        # and unshared plans agree on the same data.
        shared = execute_plan(build_pullup_plan(workload), small_stream_data.tuples)
        unshared = execute_plan(build_unshared_plan(workload), small_stream_data.tuples)
        for name in workload.names():
            assert joined_keys(shared.results[name]) == joined_keys(unshared.results[name])
        assert condition is not None
