"""Property tests: hash probing ≡ nested-loop probing.

The hash probe path of the sliced joins keeps a per-stream, per-slice index
on the equi-join key, maintained under insert and expire and rebuilt across
slice split/merge migrations.  These properties assert that for *any*
arrival sequence and *any* migration schedule the hash path produces join
outputs identical — same pairs, same order — to the nested-loop path, and
that the internal index always agrees with the deque state it mirrors.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import SlicedJoinChain
from repro.core.count_chain import CountSlicedJoinChain
from repro.engine.errors import PlanError
from repro.operators.sliced_join import SlicedBinaryJoin
from repro.query.predicates import EquiJoinCondition, selectivity_join
from repro.streams.tuples import make_tuple

CONDITION = EquiJoinCondition("key", "key", key_domain=4)


def build_tuples(spec):
    """Materialize a (stream_is_a, key, gap) spec list into arrivals."""
    tuples = []
    timestamp = 0.0
    for is_a, key, gap in spec:
        timestamp += gap
        tuples.append(make_tuple("A" if is_a else "B", timestamp, key=key))
    return tuples


arrival_specs = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=3),
        st.floats(min_value=0.01, max_value=1.2),
    ),
    min_size=4,
    max_size=60,
)


def chain_pair(kind, boundaries):
    cls = SlicedJoinChain if kind == "time" else CountSlicedJoinChain
    return (
        cls(boundaries, CONDITION, probe="nested_loop"),
        cls(boundaries, CONDITION, probe="hash"),
    )


def tagged(results):
    return [(index, joined.left.seqno, joined.right.seqno) for index, joined in results]


def index_agrees_with_state(join):
    """The hash index holds exactly the deque state, bucketed by key."""
    if join._indexes is None:
        return True
    for stream, state in join._states.items():
        indexed = [
            tup.seqno
            for bucket in join._indexes[stream].values()
            for tup in bucket
        ]
        if sorted(indexed) != sorted(tup.seqno for tup in state):
            return False
        attribute = join._key_attrs[stream]
        for key, bucket in join._indexes[stream].items():
            if not bucket:
                return False  # empty buckets must be deleted eagerly
            if any(tup[attribute] != key for tup in bucket):
                return False
    return True


class TestInsertExpire:
    """Equivalence under plain execution (insert + cross-purge/evict)."""

    @settings(max_examples=60, deadline=None)
    @given(arrival_specs)
    def test_time_chain_outputs_identical(self, spec):
        tuples = build_tuples(spec)
        nested, hashed = chain_pair("time", [0.0, 1.5, 4.0])
        assert tagged(nested.process_all(tuples)) == tagged(hashed.process_all(tuples))
        for join in hashed.joins:
            assert index_agrees_with_state(join)

    @settings(max_examples=60, deadline=None)
    @given(arrival_specs)
    def test_count_chain_outputs_identical(self, spec):
        tuples = build_tuples(spec)
        nested, hashed = chain_pair("count", [0, 3, 9])
        assert tagged(nested.process_all(tuples)) == tagged(hashed.process_all(tuples))
        for join in hashed.joins:
            assert index_agrees_with_state(join)

    @settings(max_examples=40, deadline=None)
    @given(arrival_specs)
    def test_batched_equals_per_tuple(self, spec):
        tuples = build_tuples(spec)
        for kind, boundaries in (("time", [0.0, 2.0, 4.0]), ("count", [0, 4, 8])):
            _, per_tuple = chain_pair(kind, boundaries)
            _, batched = chain_pair(kind, boundaries)
            want = sorted(tagged(per_tuple.process_all(tuples)))
            got = sorted(tagged(batched.process_batch(tuples)))
            assert want == got


migration_schedules = st.lists(
    st.tuples(st.integers(min_value=0, max_value=59), st.sampled_from("smad")),
    min_size=1,
    max_size=6,
)


def apply_migration(chain, op, kind):
    """Apply one migration op if currently legal; returns True when applied."""
    boundaries = chain.boundaries
    if op == "s":  # split the widest slice at its midpoint
        widths = [
            (end - start, index)
            for index, (start, end) in enumerate(zip(boundaries, boundaries[1:]))
        ]
        width, index = max(widths)
        middle = boundaries[index] + width / 2
        if kind == "count":
            middle = int(middle)
            if not boundaries[index] < middle < boundaries[index + 1]:
                return False
        chain.split_slice(index, middle)
        return True
    if op == "m":  # merge the first two slices
        if chain.slice_count() < 2:
            return False
        chain.merge_slices(0)
        return True
    if op == "a":  # append a tail slice
        end = boundaries[-1] * 2 if kind == "time" else int(boundaries[-1]) + 3
        chain.append_slice(end)
        return True
    if chain.slice_count() < 2:  # "d": drop the tail slice
        return False
    chain.drop_tail_slice()
    return True


class TestMigrations:
    """Equivalence across split/merge/append/drop migrations.

    The same arrival sequence and the same migration schedule are applied
    to a nested-loop chain and a hash chain; outputs must stay identical,
    which pins down the index rebuilds performed by load_state.
    """

    @settings(max_examples=60, deadline=None)
    @given(arrival_specs, migration_schedules)
    def test_time_chain_migrations(self, spec, schedule):
        self._run("time", [0.0, 2.0], spec, schedule)

    @settings(max_examples=60, deadline=None)
    @given(arrival_specs, migration_schedules)
    def test_count_chain_migrations(self, spec, schedule):
        self._run("count", [0, 4], spec, schedule)

    def _run(self, kind, boundaries, spec, schedule):
        tuples = build_tuples(spec)
        nested, hashed = chain_pair(kind, boundaries)
        plan = {}
        for at, op in schedule:
            plan.setdefault(at % len(tuples), []).append(op)
        nested_out = []
        hashed_out = []
        for index, tup in enumerate(tuples):
            for op in plan.get(index, ()):
                if apply_migration(nested, op, kind):
                    applied = apply_migration(hashed, op, kind)
                    assert applied, "migration legality must not depend on probe"
            nested_out.extend(nested.process(tup))
            hashed_out.extend(hashed.process(tup))
        assert tagged(nested_out) == tagged(hashed_out)
        assert nested.boundaries == hashed.boundaries
        assert hashed.states_are_disjoint()
        for join in hashed.joins:
            assert index_agrees_with_state(join)


class TestValidation:
    def test_hash_requires_equi_join(self):
        with pytest.raises(PlanError):
            SlicedBinaryJoin(0.0, 2.0, selectivity_join(0.5), probe="hash")

    def test_auto_resolves_by_condition(self):
        equi = SlicedBinaryJoin(0.0, 2.0, CONDITION, probe="auto")
        theta = SlicedBinaryJoin(0.0, 2.0, selectivity_join(0.5), probe="auto")
        assert equi.probe == "hash"
        assert theta.probe == "nested_loop"

    def test_unknown_probe_rejected(self):
        with pytest.raises(PlanError):
            SlicedBinaryJoin(0.0, 2.0, CONDITION, probe="btree")
