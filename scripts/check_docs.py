#!/usr/bin/env python3
"""Documentation gate for CI (stdlib only).

Two checks, both required by the docs job in ``.github/workflows/ci.yml``:

1. **Link check** — every relative Markdown link in ``docs/*.md`` and
   ``README.md`` must resolve to an existing file, and a ``#fragment`` on a
   Markdown target must match a heading in that file (GitHub-style slugs).
   External (``http``/``https``/``mailto``) links are not fetched.

2. **Module docstrings** — every module under ``src/repro/`` must open with
   a docstring; the docs manual points into the code, so an undocumented
   module is a dead end.

Exit status is non-zero with one line per finding.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — good enough for the hand-written Markdown here
#: (fenced code blocks are stripped first so example links are not checked).
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """Approximate GitHub's heading-to-anchor slug."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)  # inline formatting
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """The anchor slugs a Markdown file exposes."""
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(match.group(1)) for match in HEADING.finditer(text)}


def check_links(files: list[Path]) -> list[str]:
    """Resolve every relative link (and Markdown fragment) in ``files``."""
    problems = []
    for source in files:
        text = FENCE.sub("", source.read_text(encoding="utf-8"))
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = (source.parent / path_part).resolve()
            else:
                resolved = source.resolve()  # same-file fragment
            if not resolved.exists():
                problems.append(f"{source}: broken link -> {target}")
                continue
            if fragment and resolved.suffix == ".md":
                if github_slug(fragment) not in anchors_of(resolved):
                    problems.append(
                        f"{source}: missing anchor -> {target} "
                        f"(no heading slugs to '{fragment}' in {resolved.name})"
                    )
    return problems


def check_module_docstrings(package_dir: Path) -> list[str]:
    """Every module under ``package_dir`` must open with a docstring."""
    problems = []
    for path in sorted(package_dir.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if not ast.get_docstring(tree):
            problems.append(
                f"{path.relative_to(ROOT)}: missing module docstring"
            )
    return problems


def main() -> int:
    """Run both checks; print findings; return a process exit code."""
    docs = sorted((ROOT / "docs").glob("*.md"))
    if not docs:
        print("docs/: no Markdown files found", file=sys.stderr)
        return 1
    problems = check_links(docs + [ROOT / "README.md"])
    problems += check_module_docstrings(ROOT / "src" / "repro")
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    checked = len(docs) + 1
    print(f"docs OK: {checked} Markdown files link-checked, all modules documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
